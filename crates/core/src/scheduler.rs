//! The scheduler: placing tasks and services onto pilot resources.
//!
//! The paper extends RADICAL-Pilot's scheduler to "enact priority relations between
//! services and tasks": services are placed before ordinary tasks competing for the same
//! resources, because workflows generally need their services up before compute tasks
//! can use them. This scheduler provides:
//!
//! * blocking slot allocation with back-pressure (callers wait until resources free up),
//! * service priority (pending service placements starve ordinary tasks, not vice versa),
//! * immediate rejection of requests that could never be satisfied by the node shape.
//!
//! ## Wait-queue design
//!
//! Waiters park in two explicit FIFO queues (services ahead of tasks) and each waiter
//! owns its own condition variable — its *wake slot*. A release notifies exactly the
//! head waiter instead of `notify_all`-ing every parked thread, so a free-capacity
//! event costs one targeted wakeup regardless of queue depth (no thundering herd), and
//! wakeup order is the arrival order (condvar wakeups are unordered in practice, which
//! made the old implementation effectively LIFO under load and could starve long
//! waiters). Newcomers never overtake parked waiters of their class: the fast path is
//! only taken when the relevant queues are empty.
//!
//! Two deliberate deviations from pure FIFO/utilisation trade-offs:
//!
//! * **Head-of-line blocking**: a wide request at the head parks narrower requests
//!   behind it even when they would fit right now. That is the price of the
//!   no-starvation guarantee; bounded lookahead is a noted follow-on (ROADMAP).
//! * **Deadline exception**: a waiter whose timeout expires makes one explicit final
//!   allocation attempt even when it is not at the head (services still shield
//!   themselves from tasks). A timing-out waiter leaving empty-handed while fitting
//!   capacity sits free would be strictly worse; the head is re-woken on the next
//!   release and keeps its place.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use hpcml_platform::batch::Allocation;
use hpcml_platform::resources::{ResourceError, ResourceRequest, Slot};

use crate::error::RuntimeError;

/// One parked placement request: a dedicated condition variable the releaser can
/// target, making wakeups O(1) and ordered.
struct Waiter {
    cond: Condvar,
}

#[derive(Default)]
struct SchedState {
    /// Service placements waiting for resources, in arrival order.
    services: VecDeque<Arc<Waiter>>,
    /// Task placements waiting for resources, in arrival order.
    tasks: VecDeque<Arc<Waiter>>,
    /// Total slots handed out and not yet released (for observability).
    outstanding_slots: usize,
}

impl SchedState {
    /// The waiter that should be offered newly freed capacity: the service at the head
    /// of the service queue, else the task at the head of the task queue.
    fn head(&self) -> Option<&Arc<Waiter>> {
        self.services.front().or_else(|| self.tasks.front())
    }

    /// Wake the current head waiter (if any) through its private wake slot.
    fn wake_head(&self) {
        if let Some(waiter) = self.head() {
            waiter.cond.notify_one();
        }
    }
}

/// Priority class of a placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Service instances: placed first.
    Service,
    /// Ordinary compute tasks.
    Task,
}

/// Scheduler bound to one pilot allocation.
pub struct Scheduler {
    allocation: Arc<Allocation>,
    state: Mutex<SchedState>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Scheduler")
            .field("free_cores", &self.allocation.free_cores())
            .field("free_gpus", &self.allocation.free_gpus())
            .field("waiting_services", &st.services.len())
            .field("waiting_tasks", &st.tasks.len())
            .field("outstanding_slots", &st.outstanding_slots)
            .finish()
    }
}

impl Scheduler {
    /// Create a scheduler over the given allocation.
    pub fn new(allocation: Arc<Allocation>) -> Self {
        Scheduler {
            allocation,
            state: Mutex::new(SchedState::default()),
        }
    }

    /// The allocation this scheduler places onto.
    pub fn allocation(&self) -> &Arc<Allocation> {
        &self.allocation
    }

    /// Number of slots currently handed out.
    pub fn outstanding_slots(&self) -> usize {
        self.state.lock().outstanding_slots
    }

    /// Number of service placements currently waiting for resources.
    pub fn waiting_services(&self) -> usize {
        self.state.lock().services.len()
    }

    /// Number of task placements currently waiting for resources.
    pub fn waiting_tasks(&self) -> usize {
        self.state.lock().tasks.len()
    }

    /// Allocate a slot, blocking (up to `timeout` of real time) until resources are
    /// available. Requests are served in FIFO order within their priority class;
    /// task-priority requests additionally wait while service placements are pending,
    /// so services are never starved by a flood of tasks.
    pub fn allocate(
        &self,
        req: &ResourceRequest,
        priority: Priority,
        timeout: Duration,
    ) -> Result<Slot, RuntimeError> {
        // Shape mismatches fail fast without ever queueing.
        self.allocation
            .check_satisfiable(req)
            .map_err(RuntimeError::Resource)?;

        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();

        // Fast path: nothing is parked ahead of this request, try immediately without
        // paying for a queue entry.
        let fast_eligible = match priority {
            Priority::Service => st.services.is_empty(),
            Priority::Task => st.services.is_empty() && st.tasks.is_empty(),
        };
        if fast_eligible {
            match self.allocation.allocate_slot(req) {
                Ok(slot) => {
                    st.outstanding_slots += 1;
                    return Ok(slot);
                }
                Err(ResourceError::InsufficientResources) => {}
                Err(e) => return Err(RuntimeError::Resource(e)),
            }
        }

        // Slow path: park in arrival order and wait for a targeted wakeup.
        let waiter = Arc::new(Waiter {
            cond: Condvar::new(),
        });
        match priority {
            Priority::Service => st.services.push_back(Arc::clone(&waiter)),
            Priority::Task => st.tasks.push_back(Arc::clone(&waiter)),
        }

        let result = loop {
            let eligible = match priority {
                Priority::Service => st.services.front().is_some_and(|w| Arc::ptr_eq(w, &waiter)),
                Priority::Task => {
                    st.services.is_empty()
                        && st.tasks.front().is_some_and(|w| Arc::ptr_eq(w, &waiter))
                }
            };
            if eligible {
                match self.allocation.allocate_slot(req) {
                    Ok(slot) => break Ok(slot),
                    Err(ResourceError::InsufficientResources) => {}
                    Err(e) => break Err(RuntimeError::Resource(e)),
                }
            }
            if Instant::now() >= deadline {
                // Explicit final attempt after the timeout: capacity may have freed
                // while this waiter was not at the head (or between the last wait and
                // the deadline). Service priority is still honoured — a task makes its
                // last-gasp attempt only when no service is waiting.
                let may_final_try = priority == Priority::Service || st.services.is_empty();
                if may_final_try {
                    match self.allocation.allocate_slot(req) {
                        Ok(slot) => break Ok(slot),
                        Err(ResourceError::InsufficientResources) => {}
                        Err(e) => break Err(RuntimeError::Resource(e)),
                    }
                }
                break Err(RuntimeError::WaitTimeout {
                    entity: "scheduler".to_string(),
                    awaited: format!("{} cores / {} gpus", req.cores, req.gpus),
                });
            }
            waiter.cond.wait_until(&mut st, deadline);
        };

        // Leave the queue. If this waiter was parked at the head, the next-in-line may
        // now be eligible (a departing service can unblock every task, a successful
        // head may leave capacity for its successor), so pass the wakeup on.
        match priority {
            Priority::Service => {
                if let Some(idx) = st.services.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
                    st.services.remove(idx);
                }
            }
            Priority::Task => {
                if let Some(idx) = st.tasks.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
                    st.tasks.remove(idx);
                }
            }
        }
        if result.is_ok() {
            st.outstanding_slots += 1;
        }
        st.wake_head();
        result
    }

    /// Release a previously allocated slot and wake exactly the head waiter.
    pub fn release(&self, slot: &Slot) -> Result<(), RuntimeError> {
        self.allocation.release_slot(slot)?;
        let mut st = self.state.lock();
        st.outstanding_slots = st.outstanding_slots.saturating_sub(1);
        st.wake_head();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_platform::batch::{AllocationRequest, BatchSystem};
    use hpcml_platform::PlatformId;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    fn scheduler(platform: PlatformId, nodes: usize) -> Scheduler {
        let batch = BatchSystem::new(platform.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        Scheduler::new(alloc)
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let s = scheduler(PlatformId::Local, 1); // 8 cores, 2 gpus
        let slot = s
            .allocate(
                &ResourceRequest::gpus(1),
                Priority::Service,
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(slot.num_gpus(), 1);
        assert_eq!(s.outstanding_slots(), 1);
        s.release(&slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().free_gpus(), 2);
    }

    #[test]
    fn never_satisfiable_request_errors_immediately() {
        let s = scheduler(PlatformId::Local, 1);
        let err = s
            .allocate(
                &ResourceRequest::cores(1024),
                Priority::Task,
                Duration::from_secs(5),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Resource(ResourceError::NeverSatisfiable { .. })
        ));
    }

    #[test]
    fn allocation_times_out_under_pressure() {
        let s = scheduler(PlatformId::Local, 1);
        let _hold = s
            .allocate(
                &ResourceRequest::gpus(2),
                Priority::Task,
                Duration::from_secs(1),
            )
            .unwrap();
        let err = s
            .allocate(
                &ResourceRequest::gpus(1),
                Priority::Task,
                Duration::from_millis(30),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::WaitTimeout { .. }));
        assert_eq!(
            s.waiting_tasks(),
            0,
            "timed-out waiter must leave the queue"
        );
    }

    #[test]
    fn post_timeout_final_attempt_succeeds_when_capacity_frees_late() {
        // Deterministic exercise of the explicit post-timeout attempt: one free GPU
        // exists the whole time, but the queue head (W1) needs two and never fits, so
        // the waiter behind it (W2) can obtain the free GPU *only* through the final
        // attempt at its deadline — never through head eligibility.
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 2 gpus
        let hold = s
            .allocate(
                &ResourceRequest::gpus(1),
                Priority::Task,
                Duration::from_secs(1),
            )
            .unwrap();
        let s1 = Arc::clone(&s);
        let head = thread::spawn(move || {
            s1.allocate(
                &ResourceRequest::gpus(2),
                Priority::Task,
                Duration::from_secs(10),
            )
        });
        // Let W1 park at the head before W2 arrives.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(s.waiting_tasks(), 1);
        let s2 = Arc::clone(&s);
        let behind = thread::spawn(move || {
            s2.allocate(
                &ResourceRequest::gpus(1),
                Priority::Task,
                Duration::from_millis(100),
            )
        });
        let got = behind.join().unwrap();
        assert!(
            got.is_ok(),
            "final attempt must claim the free GPU at the deadline: {got:?}"
        );
        // Unblock the head and let it finish.
        s.release(&got.unwrap()).unwrap();
        s.release(&hold).unwrap();
        let head_slot = head.join().unwrap().unwrap();
        assert_eq!(head_slot.num_gpus(), 2);
        s.release(&head_slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn blocked_allocation_wakes_on_release() {
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let slot = s
            .allocate(
                &ResourceRequest::gpus(2),
                Priority::Task,
                Duration::from_secs(1),
            )
            .unwrap();
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || {
            s2.allocate(
                &ResourceRequest::gpus(1),
                Priority::Task,
                Duration::from_secs(5),
            )
        });
        thread::sleep(Duration::from_millis(20));
        s.release(&slot).unwrap();
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got.num_gpus(), 1);
    }

    #[test]
    fn services_have_priority_over_tasks() {
        // 2 GPUs total. A task holds both; a service and a task are both waiting.
        // When the GPUs free up one by one, the service must be placed first.
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let hold_a = s
            .allocate(
                &ResourceRequest::gpus(1),
                Priority::Task,
                Duration::from_secs(1),
            )
            .unwrap();
        let hold_b = s
            .allocate(
                &ResourceRequest::gpus(1),
                Priority::Task,
                Duration::from_secs(1),
            )
            .unwrap();

        let s_svc = Arc::clone(&s);
        let svc_waiter = thread::spawn(move || {
            s_svc
                .allocate(
                    &ResourceRequest::gpus(1),
                    Priority::Service,
                    Duration::from_secs(5),
                )
                .map(|slot| ("service", slot))
        });
        // Give the service waiter time to register.
        thread::sleep(Duration::from_millis(30));
        let s_task = Arc::clone(&s);
        let task_waiter = thread::spawn(move || {
            s_task
                .allocate(
                    &ResourceRequest::gpus(1),
                    Priority::Task,
                    Duration::from_secs(5),
                )
                .map(|slot| ("task", slot))
        });
        thread::sleep(Duration::from_millis(30));

        // Free exactly one GPU: only the service should obtain it.
        s.release(&hold_a).unwrap();
        let (who, _slot) = svc_waiter.join().unwrap().unwrap();
        assert_eq!(who, "service");
        // The task is still waiting; freeing the second GPU unblocks it.
        s.release(&hold_b).unwrap();
        let (who, _slot) = task_waiter.join().unwrap().unwrap();
        assert_eq!(who, "task");
    }

    #[test]
    fn waiters_are_served_in_fifo_order() {
        // One GPU cycles through three parked waiters; completion order must match
        // arrival order (the old condvar implementation gave no such guarantee).
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 2 gpus
        let hold = s
            .allocate(
                &ResourceRequest::gpus(2),
                Priority::Task,
                Duration::from_secs(5),
            )
            .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for i in 0..3 {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            waiters.push(thread::spawn(move || {
                let slot = s2
                    .allocate(
                        &ResourceRequest::gpus(1),
                        Priority::Task,
                        Duration::from_secs(10),
                    )
                    .unwrap();
                order2.lock().push(i);
                // Hold briefly so the next waiter is definitely parked, then recycle.
                thread::sleep(Duration::from_millis(10));
                s2.release(&slot).unwrap();
            }));
            // Ensure arrival order i = park order.
            thread::sleep(Duration::from_millis(30));
        }
        assert_eq!(s.waiting_tasks(), 3);
        s.release(&hold).unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(
            *order.lock(),
            vec![0, 1, 2],
            "FIFO wait queue must serve in arrival order"
        );
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn concurrent_allocate_release_conserves_resources() {
        let s = Arc::new(scheduler(PlatformId::Delta, 2)); // 128 cores, 8 gpus
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let slot = s
                        .allocate(
                            &ResourceRequest::cores(4),
                            Priority::Task,
                            Duration::from_secs(10),
                        )
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 128);
        assert_eq!(s.allocation().free_gpus(), 8);
        assert_eq!(s.outstanding_slots(), 0);
        assert!(format!("{:?}", s).contains("free_cores"));
    }

    #[test]
    fn oversubscribed_churn_drains_without_starvation() {
        // More threads than capacity: every waiter must eventually be served (FIFO
        // guarantees progress for each parked request, not just the lucky ones).
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 8 cores
        let mut handles = Vec::new();
        for _ in 0..16 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let slot = s
                        .allocate(
                            &ResourceRequest::cores(3),
                            Priority::Task,
                            Duration::from_secs(30),
                        )
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 8);
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.waiting_tasks(), 0);
    }
}
