//! The scheduler: placing tasks and services onto pilot resources.
//!
//! The paper extends RADICAL-Pilot's scheduler to "enact priority relations between
//! services and tasks": services are placed before ordinary tasks competing for the same
//! resources, because workflows generally need their services up before compute tasks
//! can use them. This scheduler provides:
//!
//! * blocking slot allocation with back-pressure (callers wait until resources free up),
//! * service priority (pending service placements starve ordinary tasks, not vice versa),
//! * immediate rejection of requests that could never be satisfied by the node shape.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use hpcml_platform::batch::Allocation;
use hpcml_platform::resources::{ResourceError, ResourceRequest, Slot};

use crate::error::RuntimeError;

#[derive(Debug, Default)]
struct SchedState {
    /// Number of service placements currently waiting for resources.
    waiting_services: usize,
    /// Total slots handed out and not yet released (for observability).
    outstanding_slots: usize,
}

/// Priority class of a placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Service instances: placed first.
    Service,
    /// Ordinary compute tasks.
    Task,
}

/// Scheduler bound to one pilot allocation.
pub struct Scheduler {
    allocation: Arc<Allocation>,
    state: Mutex<SchedState>,
    cond: Condvar,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Scheduler")
            .field("free_cores", &self.allocation.free_cores())
            .field("free_gpus", &self.allocation.free_gpus())
            .field("waiting_services", &st.waiting_services)
            .field("outstanding_slots", &st.outstanding_slots)
            .finish()
    }
}

impl Scheduler {
    /// Create a scheduler over the given allocation.
    pub fn new(allocation: Arc<Allocation>) -> Self {
        Scheduler { allocation, state: Mutex::new(SchedState::default()), cond: Condvar::new() }
    }

    /// The allocation this scheduler places onto.
    pub fn allocation(&self) -> &Arc<Allocation> {
        &self.allocation
    }

    /// Number of slots currently handed out.
    pub fn outstanding_slots(&self) -> usize {
        self.state.lock().outstanding_slots
    }

    /// Allocate a slot, blocking (up to `timeout` of real time) until resources are
    /// available. Task-priority requests additionally wait while service placements are
    /// pending, so services are never starved by a flood of tasks.
    pub fn allocate(
        &self,
        req: &ResourceRequest,
        priority: Priority,
        timeout: Duration,
    ) -> Result<Slot, RuntimeError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        if priority == Priority::Service {
            st.waiting_services += 1;
        }
        let result = loop {
            // Tasks defer to pending services.
            let blocked_by_services = priority == Priority::Task && st.waiting_services > 0;
            if !blocked_by_services {
                match self.allocation.allocate_slot(req) {
                    Ok(slot) => break Ok(slot),
                    Err(ResourceError::InsufficientResources) => {}
                    Err(e) => break Err(RuntimeError::Resource(e)),
                }
            }
            if Instant::now() >= deadline {
                break Err(RuntimeError::WaitTimeout {
                    entity: "scheduler".to_string(),
                    awaited: format!("{} cores / {} gpus", req.cores, req.gpus),
                });
            }
            if self.cond.wait_until(&mut st, deadline).timed_out() {
                // Loop once more to make a final attempt before giving up.
            }
        };
        if priority == Priority::Service {
            st.waiting_services = st.waiting_services.saturating_sub(1);
            // Releasing the service-waiting barrier may unblock task waiters.
            self.cond.notify_all();
        }
        if result.is_ok() {
            st.outstanding_slots += 1;
        }
        result
    }

    /// Release a previously allocated slot and wake waiters.
    pub fn release(&self, slot: &Slot) -> Result<(), RuntimeError> {
        self.allocation.release_slot(slot)?;
        let mut st = self.state.lock();
        st.outstanding_slots = st.outstanding_slots.saturating_sub(1);
        self.cond.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_platform::batch::{AllocationRequest, BatchSystem};
    use hpcml_platform::PlatformId;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    fn scheduler(platform: PlatformId, nodes: usize) -> Scheduler {
        let batch = BatchSystem::new(platform.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        Scheduler::new(alloc)
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let s = scheduler(PlatformId::Local, 1); // 8 cores, 2 gpus
        let slot = s.allocate(&ResourceRequest::gpus(1), Priority::Service, Duration::from_secs(1)).unwrap();
        assert_eq!(slot.num_gpus(), 1);
        assert_eq!(s.outstanding_slots(), 1);
        s.release(&slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().free_gpus(), 2);
    }

    #[test]
    fn never_satisfiable_request_errors_immediately() {
        let s = scheduler(PlatformId::Local, 1);
        let err = s
            .allocate(&ResourceRequest::cores(1024), Priority::Task, Duration::from_secs(5))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Resource(ResourceError::NeverSatisfiable { .. })));
    }

    #[test]
    fn allocation_times_out_under_pressure() {
        let s = scheduler(PlatformId::Local, 1);
        let _hold = s.allocate(&ResourceRequest::gpus(2), Priority::Task, Duration::from_secs(1)).unwrap();
        let err = s
            .allocate(&ResourceRequest::gpus(1), Priority::Task, Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::WaitTimeout { .. }));
    }

    #[test]
    fn blocked_allocation_wakes_on_release() {
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let slot = s.allocate(&ResourceRequest::gpus(2), Priority::Task, Duration::from_secs(1)).unwrap();
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || {
            s2.allocate(&ResourceRequest::gpus(1), Priority::Task, Duration::from_secs(5))
        });
        thread::sleep(Duration::from_millis(20));
        s.release(&slot).unwrap();
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got.num_gpus(), 1);
    }

    #[test]
    fn services_have_priority_over_tasks() {
        // 2 GPUs total. A task holds both; a service and a task are both waiting.
        // When the GPUs free up one by one, the service must be placed first.
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let hold_a = s.allocate(&ResourceRequest::gpus(1), Priority::Task, Duration::from_secs(1)).unwrap();
        let hold_b = s.allocate(&ResourceRequest::gpus(1), Priority::Task, Duration::from_secs(1)).unwrap();

        let s_svc = Arc::clone(&s);
        let svc_waiter = thread::spawn(move || {
            s_svc
                .allocate(&ResourceRequest::gpus(1), Priority::Service, Duration::from_secs(5))
                .map(|slot| ("service", slot))
        });
        // Give the service waiter time to register.
        thread::sleep(Duration::from_millis(30));
        let s_task = Arc::clone(&s);
        let task_waiter = thread::spawn(move || {
            s_task
                .allocate(&ResourceRequest::gpus(1), Priority::Task, Duration::from_secs(5))
                .map(|slot| ("task", slot))
        });
        thread::sleep(Duration::from_millis(30));

        // Free exactly one GPU: only the service should obtain it.
        s.release(&hold_a).unwrap();
        let (who, _slot) = svc_waiter.join().unwrap().unwrap();
        assert_eq!(who, "service");
        // The task is still waiting; freeing the second GPU unblocks it.
        s.release(&hold_b).unwrap();
        let (who, _slot) = task_waiter.join().unwrap().unwrap();
        assert_eq!(who, "task");
    }

    #[test]
    fn concurrent_allocate_release_conserves_resources() {
        let s = Arc::new(scheduler(PlatformId::Delta, 2)); // 128 cores, 8 gpus
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let slot = s
                        .allocate(&ResourceRequest::cores(4), Priority::Task, Duration::from_secs(10))
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 128);
        assert_eq!(s.allocation().free_gpus(), 8);
        assert_eq!(s.outstanding_slots(), 0);
        assert!(format!("{:?}", s).contains("free_cores"));
    }
}
