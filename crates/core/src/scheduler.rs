//! The scheduler: placing tasks and services onto pilot resources.
//!
//! The paper extends RADICAL-Pilot's scheduler to "enact priority relations between
//! services and tasks": services are placed before ordinary tasks competing for the same
//! resources, because workflows generally need their services up before compute tasks
//! can use them. This scheduler provides:
//!
//! * blocking slot allocation with back-pressure (callers wait until resources free up),
//! * service priority (pending service placements starve ordinary tasks, not vice versa),
//! * immediate rejection of requests that could never be satisfied by the node shape,
//! * gang placement: a multi-node MPI request (`ResourceRequest::nodes > 1`) parks in
//!   the same FIFO queues and is granted atomically once enough idle nodes exist.
//!
//! ## Wait-queue design
//!
//! Waiters park in two explicit FIFO queues (services ahead of tasks) and each waiter
//! owns its own condition variable — its *wake slot*. A release notifies the waiters in
//! the serve window instead of `notify_all`-ing every parked thread, so a free-capacity
//! event costs at most `lookahead` targeted wakeups regardless of queue depth (no
//! thundering herd), and wakeup order is the arrival order (condvar wakeups are
//! unordered in practice, which made the old implementation effectively LIFO under load
//! and could starve long waiters). Newcomers never overtake parked waiters of their
//! class: the fast path is only taken when the relevant queues are empty, so arrival
//! order is always recorded and the window below is the *only* overtaking mechanism.
//!
//! ## Bounded lookahead
//!
//! Strict FIFO implies head-of-line blocking: a wide gang at the head parks narrow
//! requests behind it even when they would fit right now. A scheduler built with
//! [`Scheduler::with_lookahead`] relaxes FIFO *within* a priority class: the first `k`
//! parked waiters of the serving class may attempt placement, so a blocked wide gang
//! lets smaller requests inside the window through while keeping its place at the
//! head. Service priority stays absolute — tasks never place while any service waits,
//! exactly as with `k = 1` — so the PR-1 guarantee that services are never starved by
//! tasks holds for every window size. `k = 1` (the [`Scheduler::new`] default) is the
//! strict-FIFO no-starvation behaviour.
//!
//! The price of `k > 1` is stated plainly: within a class there is no ageing, so a
//! wide waiter at the head can be overtaken indefinitely while narrower requests
//! inside the window keep fitting — the utilisation/fairness trade the ROADMAP calls
//! for. Workloads that must bound gang wait time should keep the default window or
//! drain (a backfill-reservation window is the noted follow-on).
//!
//! One further deliberate deviation: a waiter whose timeout expires makes one explicit
//! final allocation attempt even when it is outside the window (services still shield
//! themselves from tasks). A timing-out waiter leaving empty-handed while fitting
//! capacity sits free would be strictly worse; the head is re-woken on the next
//! release and keeps its place.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use hpcml_platform::batch::Allocation;
use hpcml_platform::resources::{ResourceError, ResourceRequest, Slot};

use crate::error::RuntimeError;

/// One parked placement request: a dedicated condition variable the releaser can
/// target, making wakeups O(1) and ordered.
struct Waiter {
    cond: Condvar,
}

#[derive(Default)]
struct SchedState {
    /// Service placements waiting for resources, in arrival order.
    services: VecDeque<Arc<Waiter>>,
    /// Task placements waiting for resources, in arrival order.
    tasks: VecDeque<Arc<Waiter>>,
    /// Total slots handed out and not yet released (for observability).
    outstanding_slots: usize,
}

impl SchedState {
    /// Wake every waiter inside the serve window through their private wake slots:
    /// the first `window` services, or — only when no service waits — the first
    /// `window` tasks (service priority is absolute). With a window of 1 this is
    /// exactly the old wake-the-head behaviour.
    fn wake_window(&self, window: usize) {
        let class = if self.services.is_empty() {
            &self.tasks
        } else {
            &self.services
        };
        for waiter in class.iter().take(window) {
            waiter.cond.notify_one();
        }
    }
}

/// Priority class of a placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Service instances: placed first.
    Service,
    /// Ordinary compute tasks.
    Task,
}

/// Scheduler bound to one pilot allocation.
pub struct Scheduler {
    allocation: Arc<Allocation>,
    state: Mutex<SchedState>,
    /// Serve window: how many parked waiters of the serving class may attempt a
    /// placement. 1 = strict FIFO; service priority is absolute at every size.
    lookahead: usize,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Scheduler")
            .field("free_cores", &self.allocation.free_cores())
            .field("free_gpus", &self.allocation.free_gpus())
            .field("waiting_services", &st.services.len())
            .field("waiting_tasks", &st.tasks.len())
            .field("outstanding_slots", &st.outstanding_slots)
            .field("lookahead", &self.lookahead)
            .finish()
    }
}

impl Scheduler {
    /// Create a strict-FIFO scheduler over the given allocation (lookahead 1).
    pub fn new(allocation: Arc<Allocation>) -> Self {
        Scheduler::with_lookahead(allocation, 1)
    }

    /// Create a scheduler serving the first `lookahead` parked waiters of the
    /// serving class that fit (head-of-line relief for mixed request widths within a
    /// priority class; tasks still never overtake a waiting service). Clamped to at
    /// least 1.
    pub fn with_lookahead(allocation: Arc<Allocation>, lookahead: usize) -> Self {
        Scheduler {
            allocation,
            state: Mutex::new(SchedState::default()),
            lookahead: lookahead.max(1),
        }
    }

    /// The allocation this scheduler places onto.
    pub fn allocation(&self) -> &Arc<Allocation> {
        &self.allocation
    }

    /// The serve-window size (1 = strict FIFO).
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Number of slots currently handed out.
    pub fn outstanding_slots(&self) -> usize {
        self.state.lock().outstanding_slots
    }

    /// Number of service placements currently waiting for resources.
    pub fn waiting_services(&self) -> usize {
        self.state.lock().services.len()
    }

    /// Number of task placements currently waiting for resources.
    pub fn waiting_tasks(&self) -> usize {
        self.state.lock().tasks.len()
    }

    /// Whether a parked waiter at `position` within its class queue may attempt a
    /// placement: within the first `lookahead` entries of its class, and — for tasks —
    /// only while no service waits (service priority is absolute for every window
    /// size). With lookahead 1 this is exactly "services: at the head; tasks: at the
    /// head with no service waiting".
    fn in_window(&self, st: &SchedState, priority: Priority, position: usize) -> bool {
        match priority {
            Priority::Service => position < self.lookahead,
            Priority::Task => st.services.is_empty() && position < self.lookahead,
        }
    }

    /// Allocate a slot, blocking (up to `timeout` of real time) until resources are
    /// available. Requests are served in FIFO order within their priority class,
    /// relaxed only by the bounded lookahead window; task-priority requests
    /// additionally wait while any service placement is pending, so services are
    /// never starved by a flood of tasks. A gang request (`req.nodes > 1`) waits like
    /// any other request until enough idle nodes exist, then claims them atomically.
    pub fn allocate(
        &self,
        req: &ResourceRequest,
        priority: Priority,
        timeout: Duration,
    ) -> Result<Slot, RuntimeError> {
        // Shape mismatches fail fast without ever queueing.
        self.allocation
            .check_satisfiable(req)
            .map_err(RuntimeError::Resource)?;

        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();

        // Fast path: nothing is parked ahead of this request, try immediately without
        // paying for a queue entry. Deliberately stricter than the serve window —
        // newcomers always queue when anyone of their class waits, so a stream of
        // arrivals can never rotate through the window without recording arrival
        // order.
        let fast_eligible = match priority {
            Priority::Service => st.services.is_empty(),
            Priority::Task => st.services.is_empty() && st.tasks.is_empty(),
        };
        if fast_eligible {
            match self.allocation.allocate_slot(req) {
                Ok(slot) => {
                    st.outstanding_slots += 1;
                    return Ok(slot);
                }
                Err(ResourceError::InsufficientResources) => {}
                Err(e) => return Err(RuntimeError::Resource(e)),
            }
        }

        // Slow path: park in arrival order and wait for a targeted wakeup.
        let waiter = Arc::new(Waiter {
            cond: Condvar::new(),
        });
        match priority {
            Priority::Service => st.services.push_back(Arc::clone(&waiter)),
            Priority::Task => st.tasks.push_back(Arc::clone(&waiter)),
        }

        let result = loop {
            let queue = match priority {
                Priority::Service => &st.services,
                Priority::Task => &st.tasks,
            };
            // Bounded scan: the waiter can only be eligible within the first
            // `lookahead` entries, so the position probe never walks a deep queue.
            let position = queue
                .iter()
                .take(self.lookahead)
                .position(|w| Arc::ptr_eq(w, &waiter));
            let eligible = position.is_some_and(|p| self.in_window(&st, priority, p));
            if eligible {
                match self.allocation.allocate_slot(req) {
                    Ok(slot) => break Ok(slot),
                    Err(ResourceError::InsufficientResources) => {}
                    Err(e) => break Err(RuntimeError::Resource(e)),
                }
            }
            if Instant::now() >= deadline {
                // Explicit final attempt after the timeout: capacity may have freed
                // while this waiter was outside the window (or between the last wait
                // and the deadline). Service priority is still honoured — a task makes
                // its last-gasp attempt only when no service is waiting.
                let may_final_try = priority == Priority::Service || st.services.is_empty();
                if may_final_try {
                    match self.allocation.allocate_slot(req) {
                        Ok(slot) => break Ok(slot),
                        Err(ResourceError::InsufficientResources) => {}
                        Err(e) => break Err(RuntimeError::Resource(e)),
                    }
                }
                let shape = format!("{} cores / {} gpus", req.cores, req.gpus);
                break Err(RuntimeError::WaitTimeout {
                    entity: "scheduler".to_string(),
                    awaited: if req.nodes > 1 {
                        format!("{} nodes x ({shape}) gang", req.nodes)
                    } else {
                        shape
                    },
                });
            }
            waiter.cond.wait_until(&mut st, deadline);
        };

        // Leave the queue. The departure shifts everyone behind this waiter one
        // position forward, so a new waiter may have entered the window (a departing
        // service can unblock tasks, a successful head may leave capacity for its
        // successor): pass the wakeup on.
        match priority {
            Priority::Service => {
                if let Some(idx) = st.services.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
                    st.services.remove(idx);
                }
            }
            Priority::Task => {
                if let Some(idx) = st.tasks.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
                    st.tasks.remove(idx);
                }
            }
        }
        if result.is_ok() {
            st.outstanding_slots += 1;
        }
        st.wake_window(self.lookahead);
        result
    }

    /// Release a previously allocated slot and wake the waiters in the serve window.
    pub fn release(&self, slot: &Slot) -> Result<(), RuntimeError> {
        self.allocation.release_slot(slot)?;
        let mut st = self.state.lock();
        st.outstanding_slots = st.outstanding_slots.saturating_sub(1);
        st.wake_window(self.lookahead);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_platform::batch::{AllocationRequest, BatchSystem};
    use hpcml_platform::PlatformId;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    fn scheduler(platform: PlatformId, nodes: usize) -> Scheduler {
        scheduler_with_lookahead(platform, nodes, 1)
    }

    fn scheduler_with_lookahead(platform: PlatformId, nodes: usize, lookahead: usize) -> Scheduler {
        let batch = BatchSystem::new(platform.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        Scheduler::with_lookahead(alloc, lookahead)
    }

    fn gpus(n: u32) -> ResourceRequest {
        ResourceRequest::gpus(n).unwrap()
    }

    fn cores(n: u32) -> ResourceRequest {
        ResourceRequest::cores(n).unwrap()
    }

    /// Poll until `pred` holds (bounded at 5 s), so queue-depth assertions do not race
    /// thread start-up on a loaded host.
    fn wait_until(s: &Scheduler, what: &str, pred: impl Fn(&Scheduler) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pred(s) {
            assert!(Instant::now() < deadline, "timed out waiting for: {what}");
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let s = scheduler(PlatformId::Local, 1); // 8 cores, 2 gpus
        let slot = s
            .allocate(&gpus(1), Priority::Service, Duration::from_secs(1))
            .unwrap();
        assert_eq!(slot.num_gpus(), 1);
        assert_eq!(s.outstanding_slots(), 1);
        s.release(&slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().free_gpus(), 2);
        assert_eq!(s.lookahead(), 1);
    }

    #[test]
    fn never_satisfiable_request_errors_immediately() {
        let s = scheduler(PlatformId::Local, 1);
        let err = s
            .allocate(&cores(1024), Priority::Task, Duration::from_secs(5))
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Resource(ResourceError::NeverSatisfiable { .. })
        ));
    }

    #[test]
    fn allocation_times_out_under_pressure() {
        let s = scheduler(PlatformId::Local, 1);
        let _hold = s
            .allocate(&gpus(2), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let err = s
            .allocate(&gpus(1), Priority::Task, Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::WaitTimeout { .. }));
        assert_eq!(
            s.waiting_tasks(),
            0,
            "timed-out waiter must leave the queue"
        );
    }

    #[test]
    fn post_timeout_final_attempt_succeeds_when_capacity_frees_late() {
        // Deterministic exercise of the explicit post-timeout attempt: one free GPU
        // exists the whole time, but the queue head (W1) needs two and never fits, so
        // the waiter behind it (W2) can obtain the free GPU *only* through the final
        // attempt at its deadline — never through head eligibility.
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 2 gpus
        let hold = s
            .allocate(&gpus(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s1 = Arc::clone(&s);
        let head =
            thread::spawn(move || s1.allocate(&gpus(2), Priority::Task, Duration::from_secs(10)));
        // Let W1 park at the head before W2 arrives.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(s.waiting_tasks(), 1);
        let s2 = Arc::clone(&s);
        let behind = thread::spawn(move || {
            s2.allocate(&gpus(1), Priority::Task, Duration::from_millis(100))
        });
        let got = behind.join().unwrap();
        assert!(
            got.is_ok(),
            "final attempt must claim the free GPU at the deadline: {got:?}"
        );
        // Unblock the head and let it finish.
        s.release(&got.unwrap()).unwrap();
        s.release(&hold).unwrap();
        let head_slot = head.join().unwrap().unwrap();
        assert_eq!(head_slot.num_gpus(), 2);
        s.release(&head_slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn blocked_allocation_wakes_on_release() {
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let slot = s
            .allocate(&gpus(2), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s2 = Arc::clone(&s);
        let waiter =
            thread::spawn(move || s2.allocate(&gpus(1), Priority::Task, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        s.release(&slot).unwrap();
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got.num_gpus(), 1);
    }

    #[test]
    fn services_have_priority_over_tasks() {
        // 2 GPUs total. A task holds both; a service and a task are both waiting.
        // When the GPUs free up one by one, the service must be placed first.
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let hold_a = s
            .allocate(&gpus(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&gpus(1), Priority::Task, Duration::from_secs(1))
            .unwrap();

        let s_svc = Arc::clone(&s);
        let svc_waiter = thread::spawn(move || {
            s_svc
                .allocate(&gpus(1), Priority::Service, Duration::from_secs(5))
                .map(|slot| ("service", slot))
        });
        // Give the service waiter time to register.
        thread::sleep(Duration::from_millis(30));
        let s_task = Arc::clone(&s);
        let task_waiter = thread::spawn(move || {
            s_task
                .allocate(&gpus(1), Priority::Task, Duration::from_secs(5))
                .map(|slot| ("task", slot))
        });
        thread::sleep(Duration::from_millis(30));

        // Free exactly one GPU: only the service should obtain it.
        s.release(&hold_a).unwrap();
        let (who, _slot) = svc_waiter.join().unwrap().unwrap();
        assert_eq!(who, "service");
        // The task is still waiting; freeing the second GPU unblocks it.
        s.release(&hold_b).unwrap();
        let (who, _slot) = task_waiter.join().unwrap().unwrap();
        assert_eq!(who, "task");
    }

    #[test]
    fn waiters_are_served_in_fifo_order() {
        // One GPU cycles through three parked waiters; completion order must match
        // arrival order (the old condvar implementation gave no such guarantee).
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 2 gpus
        let hold = s
            .allocate(&gpus(2), Priority::Task, Duration::from_secs(5))
            .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for i in 0..3 {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            waiters.push(thread::spawn(move || {
                let slot = s2
                    .allocate(&gpus(1), Priority::Task, Duration::from_secs(10))
                    .unwrap();
                order2.lock().push(i);
                // Hold briefly so the next waiter is definitely parked, then recycle.
                thread::sleep(Duration::from_millis(10));
                s2.release(&slot).unwrap();
            }));
            // Ensure arrival order i = park order.
            thread::sleep(Duration::from_millis(30));
        }
        assert_eq!(s.waiting_tasks(), 3);
        s.release(&hold).unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(
            *order.lock(),
            vec![0, 1, 2],
            "FIFO wait queue must serve in arrival order"
        );
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn gang_parks_until_enough_nodes_idle_then_claims_atomically() {
        // 2-node allocation; both nodes carry a single-node slot, so a 2-node gang
        // must park. Releasing both slots frees two idle nodes and the gang claims
        // them as a unit.
        let s = Arc::new(scheduler(PlatformId::Local, 2));
        let hold_a = s
            .allocate(&cores(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        assert_ne!(hold_a.node_index(), hold_b.node_index());
        let s2 = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s2.allocate(
                &cores(4).with_nodes(2),
                Priority::Task,
                Duration::from_secs(30),
            )
        });
        wait_until(&s, "gang parked", |s| s.waiting_tasks() == 1);
        // One idle node is not enough: the gang must remain parked. (Asserting an
        // unchanged state, so a fixed grace period is race-free — the gang's distant
        // deadline cannot remove it from the queue meanwhile.)
        s.release(&hold_a).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(s.waiting_tasks(), 1, "gang still parked on one idle node");
        s.release(&hold_b).unwrap();
        let gang = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 2);
        assert_eq!(gang.num_cores(), 8);
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().idle_nodes(), 2);
    }

    #[test]
    fn lookahead_serves_fitting_tasks_behind_a_blocked_gang() {
        // Local: 2 nodes x 8 cores. Node A carries one pinned core (never released
        // during the blocking phase), node B is fully held. A 2-node gang parks at the
        // head; a whole-node task behind it fits node B the moment it frees.
        let s = Arc::new(scheduler_with_lookahead(PlatformId::Local, 2, 2));
        let pin = s
            .allocate(&cores(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s1 = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s1.allocate(
                &cores(4).with_nodes(2),
                Priority::Task,
                Duration::from_secs(30),
            )
        });
        wait_until(&s, "gang parked at the head", |s| s.waiting_tasks() == 1);
        let s2 = Arc::clone(&s);
        let narrow_waiter =
            thread::spawn(move || s2.allocate(&cores(8), Priority::Task, Duration::from_secs(30)));
        wait_until(&s, "narrow task parked behind the gang", |s| {
            s.waiting_tasks() == 2
        });
        // Free node B: the gang at the head still cannot fit (node A is pinned), but
        // the narrow task inside the lookahead window must be served.
        s.release(&hold_b).unwrap();
        let narrow = narrow_waiter.join().unwrap().unwrap();
        assert_eq!(narrow.num_cores(), 8);
        assert_eq!(s.waiting_tasks(), 1, "gang keeps its place at the head");
        // Unblock the gang: release the narrow slot and the pin.
        s.release(&narrow).unwrap();
        s.release(&pin).unwrap();
        let gang = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 2);
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn lookahead_never_lets_tasks_overtake_waiting_services() {
        // Service priority is absolute for every window size: with lookahead 4, a
        // newcomer task that would fit must still queue behind a parked service, and
        // freed capacity goes to the service first.
        let s = Arc::new(scheduler_with_lookahead(PlatformId::Local, 1, 4)); // 2 gpus
        let hold = s
            .allocate(&gpus(2), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s_svc = Arc::clone(&s);
        let svc = thread::spawn(move || {
            s_svc.allocate(&gpus(2), Priority::Service, Duration::from_secs(30))
        });
        wait_until(&s, "service parked", |s| s.waiting_services() == 1);
        let s_task = Arc::clone(&s);
        let task = thread::spawn(move || {
            s_task.allocate(&gpus(1), Priority::Task, Duration::from_secs(30))
        });
        wait_until(
            &s,
            "newcomer task parked while a service waits, even inside the window",
            |s| s.waiting_tasks() == 1,
        );
        s.release(&hold).unwrap();
        let svc_slot = svc.join().unwrap().unwrap();
        assert_eq!(
            svc_slot.num_gpus(),
            2,
            "service takes the freed capacity first"
        );
        s.release(&svc_slot).unwrap();
        let task_slot = task.join().unwrap().unwrap();
        s.release(&task_slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn strict_fifo_blocks_tasks_behind_a_parked_gang() {
        // Contrast case for the lookahead test: with the default lookahead of 1, the
        // same narrow task behind a blocked gang stays parked even while node B sits
        // free (head-of-line blocking is the documented price of strict FIFO).
        let s = Arc::new(scheduler(PlatformId::Local, 2));
        let pin = s
            .allocate(&cores(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s1 = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s1.allocate(
                &cores(4).with_nodes(2),
                Priority::Task,
                Duration::from_secs(30),
            )
        });
        wait_until(&s, "gang parked at the head", |s| s.waiting_tasks() == 1);
        s.release(&hold_b).unwrap();
        let s2 = Arc::clone(&s);
        let narrow_waiter =
            thread::spawn(move || s2.allocate(&cores(8), Priority::Task, Duration::from_secs(30)));
        wait_until(&s, "narrow task parked behind the gang", |s| {
            s.waiting_tasks() == 2
        });
        // Both waiters' deadlines are far away, so "still parked after a grace
        // period" is a race-free way to observe that strict FIFO refuses to serve
        // the narrow task while node B idles behind the blocked gang.
        thread::sleep(Duration::from_millis(100));
        assert_eq!(
            s.waiting_tasks(),
            2,
            "strict FIFO must keep the narrow task parked behind the gang"
        );
        // Unblock in order: the gang claims both nodes, then the narrow task fits.
        s.release(&pin).unwrap();
        let gang = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 2);
        s.release(&gang).unwrap();
        let narrow = narrow_waiter.join().unwrap().unwrap();
        s.release(&narrow).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn concurrent_allocate_release_conserves_resources() {
        let s = Arc::new(scheduler(PlatformId::Delta, 2)); // 128 cores, 8 gpus
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let slot = s
                        .allocate(&cores(4), Priority::Task, Duration::from_secs(10))
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 128);
        assert_eq!(s.allocation().free_gpus(), 8);
        assert_eq!(s.outstanding_slots(), 0);
        assert!(format!("{:?}", s).contains("free_cores"));
    }

    #[test]
    fn oversubscribed_churn_drains_without_starvation() {
        // More threads than capacity: every waiter must eventually be served (FIFO
        // guarantees progress for each parked request, not just the lucky ones).
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 8 cores
        let mut handles = Vec::new();
        for _ in 0..16 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let slot = s
                        .allocate(&cores(3), Priority::Task, Duration::from_secs(30))
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 8);
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.waiting_tasks(), 0);
    }

    #[test]
    fn oversubscribed_gang_and_single_churn_drains_with_lookahead() {
        // Mixed widths under a lookahead window: 2-node gangs and single-node tasks
        // hammer a 2-node allocation; everything must drain with resources conserved.
        let s = Arc::new(scheduler_with_lookahead(PlatformId::Local, 2, 3));
        let mut handles = Vec::new();
        for i in 0..8 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                let req = if i % 2 == 0 {
                    cores(2).with_nodes(2)
                } else {
                    cores(3)
                };
                for _ in 0..20 {
                    let slot = s
                        .allocate(&req, Priority::Task, Duration::from_secs(30))
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 16);
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.waiting_tasks(), 0);
        assert_eq!(s.allocation().idle_nodes(), 2);
    }
}
