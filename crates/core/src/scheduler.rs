//! The scheduler: placing tasks and services onto pilot resources.
//!
//! The paper extends RADICAL-Pilot's scheduler to "enact priority relations between
//! services and tasks": services are placed before ordinary tasks competing for the same
//! resources, because workflows generally need their services up before compute tasks
//! can use them. This scheduler provides:
//!
//! * blocking slot allocation with back-pressure (callers wait until resources free up),
//! * service priority (pending service placements starve ordinary tasks, not vice versa),
//! * immediate rejection of requests that could never be satisfied by the node shape,
//! * gang placement: a multi-node MPI request (`ResourceRequest::nodes > 1`) parks in
//!   the same FIFO queues and is granted atomically once enough idle nodes exist,
//! * batched admission: a burst of submissions enqueues under one lock round-trip per
//!   touched queue shard ([`Scheduler::submit_batch`]) and places asynchronously.
//!
//! ## Sharded wait-queue front-end
//!
//! Waiters park in explicit FIFO queues and each waiter owns its own condition
//! variable — its *wake slot*. A release notifies the waiters in the serve window
//! instead of `notify_all`-ing every parked thread, so a free-capacity event costs at
//! most `lookahead` targeted wakeups per shard regardless of queue depth (no
//! thundering herd), and wakeup order is the arrival order. Newcomers never overtake
//! parked waiters of their class: the fast path is only taken when no waiter of the
//! relevant classes is parked, so arrival order is always recorded and the window
//! below is the *only* overtaking mechanism.
//!
//! The queues themselves are striped into [`Scheduler::queue_shards`] independently
//! locked shards so that admission and wakeup traffic from many submitting threads
//! stops serialising on one mutex (the allocator below was sharded first — see
//! `AllocationRequest::with_allocator_shards` — which left this front-end as the
//! remaining serial section):
//!
//! * **Shard key.** Services always park on shard 0: the service class is never
//!   striped, because its absolute priority needs one authoritative arrival order.
//!   Tasks are striped round-robin by an admission rotor, so each shard holds an
//!   arrival-ordered subsequence of the task stream and per-shard FIFO is the sharded
//!   relaxation of the global FIFO (exact at one shard).
//! * **Service gate.** A cross-shard atomic count of parked services gates every
//!   task-side decision — fast path, serve window, drain trigger, final attempt — so
//!   tasks in *any* shard never place while a service waits, exactly as before.
//! * **Drain gate.** The single active backfill reservation lives behind its own leaf
//!   lock, acquired only while a shard lock is held (lock order: shard → drain gate →
//!   allocation; shard locks are never nested). A parking service still cancels a
//!   task-class drain through the gate regardless of which shard the gang parked on.
//! * **Cross-shard wakeup order.** A departure or release first wakes the service
//!   window on shard 0; only when no service waits does it fan out to the task
//!   shards, visiting only shards with parked tasks (per-shard counters make the
//!   skip cheap) and waking each shard's first `lookahead` tasks.
//!
//! With `queue_shards = 1` every waiter shares one shard and the behaviour is the
//! bit-exact legacy single-queue scheduler — the escape hatch
//! `SessionBuilder::scheduler_queue_shards(1)` pins it.
//!
//! ## Batched admission
//!
//! [`Scheduler::submit_batch`] admits a burst of requests in one pass: entries are
//! validated, assigned their home shards, and appended queue-shard by queue-shard —
//! one lock round-trip per *touched shard* instead of one per request — and the
//! caller gets back one [`AdmissionTicket`] per entry. A ticket holds the waiter's
//! place in its FIFO shard; [`Scheduler::allocate_admitted`] turns it into a slot
//! (blocking like [`Scheduler::allocate`]) and [`Scheduler::cancel_admitted`]
//! abandons it without placing (a ticket dropped on an error path would otherwise
//! block its shard's FIFO forever). Admission records arrival order exactly like
//! one-by-one submission, so a batch at one queue shard places identically to the
//! same submissions made individually.
//!
//! ## Bounded lookahead
//!
//! Strict FIFO implies head-of-line blocking: a wide gang at the head parks narrow
//! requests behind it even when they would fit right now. A scheduler built with
//! [`Scheduler::with_lookahead`] relaxes FIFO *within* a priority class: the first `k`
//! parked waiters of the serving class (per shard) may attempt placement, so a blocked
//! wide gang lets smaller requests inside the window through while keeping its place
//! at the head. Service priority stays absolute — tasks never place while any service
//! waits, exactly as with `k = 1` — so the PR-1 guarantee that services are never
//! starved by tasks holds for every window size. `k = 1` (the [`Scheduler::new`]
//! default) is the strict-FIFO no-starvation behaviour.
//!
//! ## Gang backfill with ageing
//!
//! `k > 1` alone would let a wide head be overtaken indefinitely while narrower window
//! requests keep fitting. The scheduler therefore ages the head: every time a later
//! arrival of the same class places first, the overtaken waiters' counters tick, and
//! when the head is a gang whose counter exceeds [`Scheduler::max_overtakes`] (default
//! [`DEFAULT_MAX_OVERTAKES`]) — or whose wait exceeds [`Scheduler::gang_drain_after`],
//! when set — it flips into *draining* mode. Draining opens a backfill reservation on
//! the allocation ([`hpcml_platform::batch::Allocation::begin_drain`]): idle nodes are
//! pinned to the gang as they free up, invisible to every other request, until
//! `req.nodes` have accumulated and the gang places atomically. Requests inside the
//! lookahead window still backfill *around* the reservation on non-reserved capacity,
//! so throughput is preserved while starvation becomes bounded: once draining, the
//! gang places as soon as each non-reserved node has once freed enough capacity for
//! one member share (a full idle transition under [`GangPacking::Whole`]; any
//! share-covering headroom under [`GangPacking::Partial`] — see the packing section
//! below). Set both knobs to `None` to restore the pure PR-2 lookahead behaviour.
//!
//! With more than one queue shard, arrival order *across* task shards is not tracked,
//! so a successful task placement conservatively ages the parked head of every other
//! task shard one tick as well as the waiters ahead of it in its own shard. The head
//! is what the drain trigger watches; erring toward draining sooner keeps starvation
//! bounded exactly as with one shard (a gang whose shard sees no traffic would
//! otherwise never drain while churn lands on sibling shards).
//!
//! ## Gang packing: whole vs partial nodes
//!
//! Every placement resolves a [`GangPacking`] policy before touching the allocation:
//! an explicit [`ResourceRequest::packing`] wins, otherwise the scheduler's
//! session-level default applies ([`GangPacking::Partial`] unless
//! [`Scheduler::with_gang_packing`] / `SessionBuilder::gang_packing` says otherwise).
//! Under `Partial`, a gang best-fits across *partially free* nodes — each member
//! lands beside existing slots wherever one member share of headroom is free — and a
//! draining gang pins nodes as soon as their headroom covers a share, even while
//! co-tenants still run (the pinned-partial reservation state). That closes the
//! documented sub-node-churn starvation gap: a stream of sub-node tasks that never
//! lets any node go fully idle can no longer delay a draining gang indefinitely,
//! because pinning captures share-sized headroom, not just idle transitions. Under
//! `Whole` the PR-3 behaviour is preserved exactly: members claim only fully idle
//! nodes and drains pin only idle transitions. The resolved policy flows through the
//! lookahead window's fit attempts, the drain trigger, and the reservation itself.
//!
//! Drain lifecycle: at most one reservation is active per allocation — only the head
//! of the serving class drains. A draining gang that times out cancels its
//! reservation on the way out, returning every pinned node to its headroom class.
//! And because service priority is absolute, a *service* parking while a task-class
//! reservation is active cancels that drain (the task head re-opens it once no
//! service waits), so pinned nodes can never idle-block a waiting service. With
//! multiple queue shards that cancellation can race the gang's own reserved
//! placement attempt; the attempt then reports `UnknownDrain` and the gang falls
//! back to plain waiting, exactly as if it had observed the cancellation first.
//!
//! One further deliberate deviation: a waiter whose timeout expires makes one explicit
//! final allocation attempt even when it is outside the window (services still shield
//! themselves from tasks). A timing-out waiter leaving empty-handed while fitting
//! capacity sits free would be strictly worse; the head is re-woken on the next
//! release and keeps its place.
//!
//! ## Node failure & requeue
//!
//! When a node fails, its co-resident slots are evicted by the allocation
//! ([`hpcml_platform::batch::Allocation::fail_node`]) and their owners discover the
//! loss through [`Scheduler::slot_lost`]. A victim re-enters placement through
//! [`Scheduler::requeue`], which parks at the *front* of its priority-class queue
//! (on a freshly assigned shard): the task already waited its turn once, so the
//! failure must not send it to the back behind arrivals it had previously beaten.
//! [`Scheduler::release`] tolerates [`ResourceError::NodeFailed`] — the allocation
//! already reclaimed the slot's resources on eviction, so the scheduler still
//! decrements its outstanding count and passes the wakeup on, surfacing the error
//! only so the caller can tell the two paths apart. [`Scheduler::notify_capacity`]
//! lets the pilot layer re-probe parked waiters after an allocation grows
//! ([`hpcml_platform::batch::Allocation::expand`]), which releases no slot and would
//! otherwise wake nobody.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use hpcml_platform::batch::Allocation;
use hpcml_platform::resources::{GangPacking, ResourceError, ResourceRequest, Slot};

use crate::error::RuntimeError;

/// Default overtake budget before a parked head gang flips into draining mode.
pub const DEFAULT_MAX_OVERTAKES: u32 = 16;

/// Minimum attached nodes per queue shard when the shard count is derived rather
/// than pinned: small allocations collapse to one shard (the exact legacy queue).
const MIN_NODES_PER_QUEUE_SHARD: usize = 16;

/// One parked placement request: a dedicated condition variable the releaser can
/// target, making wakeups O(1) and ordered.
struct Waiter {
    cond: Condvar,
    /// How many later arrivals of this waiter's class placed while it stayed parked.
    /// Mutated under the waiter's shard lock — and, cross-shard, by sibling-shard
    /// placers that hold *their* shard lock — so it is atomic, not lock-protected.
    overtakes: AtomicU32,
}

impl Waiter {
    fn new() -> Arc<Self> {
        Arc::new(Waiter {
            cond: Condvar::new(),
            overtakes: AtomicU32::new(0),
        })
    }
}

/// The scheduler-side record of an active backfill reservation.
struct ActiveDrain {
    /// Allocation-side drain id.
    id: u64,
    /// The draining waiter (the head of its class when the drain began).
    owner: Arc<Waiter>,
    /// Class of the owner — a parking service cancels a task-class drain.
    priority: Priority,
}

/// One wait-queue shard: arrival-ordered FIFO queues per priority class. Services
/// only ever populate shard 0; the per-class split is kept per shard so the wait
/// loop's position probes stay class-local.
#[derive(Default)]
struct ShardState {
    /// Service placements waiting for resources, in arrival order (shard 0 only).
    services: VecDeque<Arc<Waiter>>,
    /// Task placements waiting for resources, in arrival order within this shard.
    tasks: VecDeque<Arc<Waiter>>,
}

/// Priority class of a placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Service instances: placed first.
    Service,
    /// Ordinary compute tasks.
    Task,
}

/// How a placement was obtained, alongside the slot: overtake, drain, and
/// shard-probe telemetry the executor turns into `task.gang.overtakes` /
/// `task.gang.drain_secs` / `task.placement.shard_probes` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlacementStats {
    /// How many later arrivals of the same class placed while this request waited.
    pub overtakes: u32,
    /// Real seconds spent in draining mode before placing (`None` = never drained).
    pub drain_secs: Option<f64>,
    /// Allocator shard locks the successful placement took: 1 = the two-choice
    /// probe hit its first shard; values toward the allocation's shard count mean
    /// summary misses, a fallback sweep, or a cross-shard gang claim.
    pub shard_probes: u32,
}

/// A parked waiter created by [`Scheduler::submit_batch`]: the request already
/// holds its FIFO place in its queue shard. Consume it with
/// [`Scheduler::allocate_admitted`] to block until placement, or return it with
/// [`Scheduler::cancel_admitted`] — an abandoned ticket would otherwise sit at its
/// shard's head forever, blocking the FIFO behind it.
#[must_use = "an admitted request must be placed via allocate_admitted or returned via cancel_admitted"]
pub struct AdmissionTicket {
    waiter: Arc<Waiter>,
    shard: usize,
    req: ResourceRequest,
    priority: Priority,
}

impl AdmissionTicket {
    /// The queue shard this ticket's waiter parked on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The priority class the request was admitted under.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

impl std::fmt::Debug for AdmissionTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionTicket")
            .field("shard", &self.shard)
            .field("priority", &self.priority)
            .finish()
    }
}

/// The result of one [`Scheduler::submit_batch`] call: the per-request tickets plus
/// the admission's fan-out shape, which the session surfaces as
/// `task.admission.shard_batch` / `task.admission.shard_wakeups` metrics.
#[derive(Debug)]
pub struct BatchAdmission {
    /// One ticket per submitted request, in submission order.
    pub tickets: Vec<AdmissionTicket>,
    /// How many of the batch's waiters were appended to each queue shard.
    pub shard_batches: Vec<usize>,
    /// Targeted wakeups per shard issued by the post-admission window wake.
    pub shard_wakeups: Vec<usize>,
}

/// Scheduler bound to one pilot allocation.
///
/// Lock order: queue shard → drain gate → allocation. Shard locks are never
/// nested; cross-shard work (wakeup fan-out, head ageing) visits shards one at a
/// time with no other shard lock held.
pub struct Scheduler {
    allocation: Arc<Allocation>,
    /// Wait-queue shards. Shard 0 holds every parked service; tasks are striped by
    /// the admission rotor.
    shards: Vec<Mutex<ShardState>>,
    /// The drain gate: the single active backfill reservation (mirrors the
    /// allocation's drain and is mutated only together with it, under this lock,
    /// itself only taken while a shard lock is held).
    drain: Mutex<Option<ActiveDrain>>,
    /// Parked services across all shards (always shard 0) — the cross-shard service
    /// gate every task-side decision reads.
    waiting_services: AtomicUsize,
    /// Parked tasks across all shards.
    waiting_tasks: AtomicUsize,
    /// Parked tasks per shard, so wakeup fan-out can skip empty shards without
    /// taking their locks.
    shard_tasks: Vec<AtomicUsize>,
    /// Targeted wakeups issued per shard (observability: `shard_wakeup_counts`).
    shard_wakeups: Vec<AtomicU64>,
    /// Total slots handed out and not yet released (for observability).
    outstanding: AtomicUsize,
    /// Round-robin task shard assignment.
    rotor: AtomicUsize,
    /// Serve window: how many parked waiters of the serving class (per shard) may
    /// attempt a placement. 1 = strict FIFO; service priority is absolute at every
    /// size.
    lookahead: usize,
    /// Overtake budget before a parked head gang flips to draining (`None` = never
    /// drain on overtakes).
    max_overtakes: Option<u32>,
    /// Age threshold before a parked head gang flips to draining (`None` = never
    /// drain on age alone).
    gang_drain_after: Option<Duration>,
    /// Session-level default gang packing, applied to every request that does not
    /// pin its own [`ResourceRequest::packing`].
    gang_packing: GangPacking,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("free_cores", &self.allocation.free_cores())
            .field("free_gpus", &self.allocation.free_gpus())
            .field("waiting_services", &self.waiting_services())
            .field("waiting_tasks", &self.waiting_tasks())
            .field("outstanding_slots", &self.outstanding_slots())
            .field("queue_shards", &self.queue_shards())
            .field("lookahead", &self.lookahead)
            .finish()
    }
}

impl Scheduler {
    /// Create a strict-FIFO scheduler over the given allocation (lookahead 1).
    pub fn new(allocation: Arc<Allocation>) -> Self {
        Scheduler::with_lookahead(allocation, 1)
    }

    /// Create a scheduler serving the first `lookahead` parked waiters of the
    /// serving class that fit (head-of-line relief for mixed request widths within a
    /// priority class; tasks still never overtake a waiting service). Clamped to at
    /// least 1. The queue-shard count is derived from the host parallelism and the
    /// allocation's node count — pin it with [`Scheduler::with_queue_shards`].
    pub fn with_lookahead(allocation: Arc<Allocation>, lookahead: usize) -> Self {
        let queue_shards = Scheduler::derived_queue_shards(&allocation);
        let mut scheduler = Scheduler {
            allocation,
            shards: Vec::new(),
            drain: Mutex::new(None),
            waiting_services: AtomicUsize::new(0),
            waiting_tasks: AtomicUsize::new(0),
            shard_tasks: Vec::new(),
            shard_wakeups: Vec::new(),
            outstanding: AtomicUsize::new(0),
            rotor: AtomicUsize::new(0),
            lookahead: lookahead.max(1),
            max_overtakes: Some(DEFAULT_MAX_OVERTAKES),
            gang_drain_after: None,
            gang_packing: GangPacking::default(),
        };
        scheduler.resize_shards(queue_shards);
        scheduler
    }

    /// The derived queue-shard count: one shard per `MIN_NODES_PER_QUEUE_SHARD`
    /// attached nodes, capped by the host parallelism — small allocations collapse
    /// to one shard, reproducing the single-queue scheduler exactly.
    fn derived_queue_shards(allocation: &Allocation) -> usize {
        let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        parallelism
            .min(allocation.num_nodes() / MIN_NODES_PER_QUEUE_SHARD)
            .max(1)
    }

    fn resize_shards(&mut self, count: usize) {
        let count = count.max(1);
        self.shards = (0..count)
            .map(|_| Mutex::new(ShardState::default()))
            .collect();
        self.shard_tasks = (0..count).map(|_| AtomicUsize::new(0)).collect();
        self.shard_wakeups = (0..count).map(|_| AtomicU64::new(0)).collect();
    }

    /// Set the wait-queue shard count: `Some(n)` pins it (clamped to at least 1,
    /// with `Some(1)` as the bit-exact legacy single-queue escape hatch); `None`
    /// re-derives it from the host parallelism and the allocation's node count.
    /// Builder-time only — must be called before any waiter parks.
    pub fn with_queue_shards(mut self, shards: Option<usize>) -> Self {
        let count = shards.unwrap_or_else(|| Scheduler::derived_queue_shards(&self.allocation));
        self.resize_shards(count);
        self
    }

    /// Set the session-level default gang packing policy: [`GangPacking::Partial`]
    /// (the default) lets gangs span partially free nodes and drains pin share-sized
    /// headroom; [`GangPacking::Whole`] restores the idle-nodes-only behaviour. A
    /// request's explicit [`ResourceRequest::packing`] always overrides this default.
    pub fn with_gang_packing(mut self, packing: GangPacking) -> Self {
        self.gang_packing = packing;
        self
    }

    /// Set the overtake budget: a head gang overtaken more than `budget` times flips
    /// into draining mode. `None` disables overtake-triggered draining (with
    /// [`Scheduler::with_gang_drain_after`] also `None`, gangs never drain — the pure
    /// bounded-lookahead behaviour).
    pub fn with_max_overtakes(mut self, budget: Option<u32>) -> Self {
        self.max_overtakes = budget;
        self
    }

    /// Set the age threshold: a head gang parked longer than `after` flips into
    /// draining mode even if its overtake budget is not yet spent. `None` (the
    /// default) drains on overtakes only.
    pub fn with_gang_drain_after(mut self, after: Option<Duration>) -> Self {
        self.gang_drain_after = after;
        self
    }

    /// The allocation this scheduler places onto.
    pub fn allocation(&self) -> &Arc<Allocation> {
        &self.allocation
    }

    /// The serve-window size (1 = strict FIFO).
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// The overtake budget before a head gang drains (`None` = overtakes never
    /// trigger a drain).
    pub fn max_overtakes(&self) -> Option<u32> {
        self.max_overtakes
    }

    /// The parked-age threshold before a head gang drains (`None` = age never
    /// triggers a drain).
    pub fn gang_drain_after(&self) -> Option<Duration> {
        self.gang_drain_after
    }

    /// The session-level default gang packing policy.
    pub fn gang_packing(&self) -> GangPacking {
        self.gang_packing
    }

    /// Number of wait-queue shards (1 = the legacy single-queue front-end).
    pub fn queue_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of slots currently handed out.
    pub fn outstanding_slots(&self) -> usize {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Number of service placements currently waiting for resources.
    pub fn waiting_services(&self) -> usize {
        self.waiting_services.load(Ordering::Acquire)
    }

    /// Number of task placements currently waiting for resources (all shards).
    pub fn waiting_tasks(&self) -> usize {
        self.waiting_tasks.load(Ordering::Acquire)
    }

    /// Cumulative targeted wakeups issued per queue shard since construction.
    pub fn shard_wakeup_counts(&self) -> Vec<u64> {
        self.shard_wakeups
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The home shard for a new waiter: services always park on shard 0 (one
    /// authoritative service arrival order); tasks stripe round-robin.
    fn home_shard(&self, priority: Priority) -> usize {
        match priority {
            Priority::Service => 0,
            Priority::Task => self.rotor.fetch_add(1, Ordering::Relaxed) % self.shards.len(),
        }
    }

    /// Whether a parked waiter at `position` within its class queue (in its shard)
    /// may attempt a placement: within the first `lookahead` entries, and — for
    /// tasks — only while no service waits anywhere (service priority is absolute
    /// for every window size and shard count).
    fn in_window(&self, priority: Priority, position: usize) -> bool {
        match priority {
            Priority::Service => position < self.lookahead,
            Priority::Task => {
                self.waiting_services.load(Ordering::Acquire) == 0 && position < self.lookahead
            }
        }
    }

    /// Whether the parked `waiter` — eligible but just denied a placement — should
    /// flip into draining mode: it is a gang at the head of its class in its shard,
    /// no other drain is active (`drain_free`: the gate was observed empty this
    /// iteration), draining is enabled, and either its overtake budget is spent or
    /// it has waited past the age threshold. A task head never opens a drain while
    /// a service waits (the reservation would hold nodes the service must get
    /// first).
    fn should_drain(
        &self,
        drain_free: bool,
        req: &ResourceRequest,
        priority: Priority,
        position: Option<usize>,
        waiter: &Arc<Waiter>,
        parked_at: Instant,
    ) -> bool {
        if !req.is_gang() || !drain_free || position != Some(0) {
            return false;
        }
        if priority == Priority::Task && self.waiting_services.load(Ordering::Acquire) > 0 {
            return false;
        }
        let overtaken = self
            .max_overtakes
            .is_some_and(|budget| waiter.overtakes.load(Ordering::Relaxed) > budget);
        let aged = self
            .gang_drain_after
            .is_some_and(|after| parked_at.elapsed() >= after);
        overtaken || aged
    }

    /// Cancel the active drain when `condition` holds for it, returning its pinned
    /// nodes to the idle bucket. The owner discovers the loss on its next wakeup
    /// (its drain-gate ownership test fails) and falls back to plain waiting.
    fn cancel_drain_if(&self, condition: impl Fn(&ActiveDrain) -> bool) {
        let mut drain = self.drain.lock();
        if drain.as_ref().is_some_and(condition) {
            let active = drain.take().expect("checked above");
            let _ = self.allocation.cancel_drain(active.id);
        }
    }

    /// Wake the waiters in the serve window, cross-shard: the service window on
    /// shard 0 first; only when no service waits, the task window of every shard
    /// with parked tasks. Called with **no shard lock held** — each shard is locked
    /// one at a time, so the fan-out can never deadlock against a parker, and
    /// because waiters release their shard lock only inside their condvar wait, a
    /// notification issued under the shard lock is never lost.
    fn wake_windows(&self) {
        self.wake_windows_recording(None);
    }

    /// [`Scheduler::wake_windows`], optionally recording the per-shard wakeup count
    /// into `record` (used by [`Scheduler::submit_batch`] for its fan-out metrics).
    fn wake_windows_recording(&self, mut record: Option<&mut [usize]>) {
        let mut note = |shard: usize, woken: u64| {
            self.shard_wakeups[shard].fetch_add(woken, Ordering::Relaxed);
            if let Some(rec) = record.as_deref_mut() {
                rec[shard] += woken as usize;
            }
        };
        if self.waiting_services.load(Ordering::Acquire) > 0 {
            let st = self.shards[0].lock();
            let mut woken = 0u64;
            for waiter in st.services.iter().take(self.lookahead) {
                waiter.cond.notify_one();
                woken += 1;
            }
            if woken > 0 {
                note(0, woken);
                return;
            }
            // Raced: the waiting services departed between the gate read and the
            // lock; fall through to the task shards.
        }
        for (idx, shard) in self.shards.iter().enumerate() {
            if self.shard_tasks[idx].load(Ordering::Acquire) == 0 {
                continue;
            }
            let st = shard.lock();
            let mut woken = 0u64;
            for waiter in st.tasks.iter().take(self.lookahead) {
                waiter.cond.notify_one();
                woken += 1;
            }
            if woken > 0 {
                note(idx, woken);
            }
        }
    }

    /// Append `waiter` to its class queue in `st` (front on requeue) and bump the
    /// waiting counters. A parking service also cancels an active task-class drain:
    /// service priority extends to reservations, so pinned nodes can never
    /// idle-block a service. The task head re-opens its drain once no service waits
    /// (its overtake count is preserved).
    fn park(
        &self,
        st: &mut ShardState,
        shard_idx: usize,
        waiter: &Arc<Waiter>,
        priority: Priority,
        requeue: bool,
    ) {
        let queue = match priority {
            Priority::Service => &mut st.services,
            Priority::Task => &mut st.tasks,
        };
        if requeue {
            queue.push_front(Arc::clone(waiter));
        } else {
            queue.push_back(Arc::clone(waiter));
        }
        match priority {
            Priority::Service => {
                self.waiting_services.fetch_add(1, Ordering::AcqRel);
                self.cancel_drain_if(|d| d.priority == Priority::Task);
            }
            Priority::Task => {
                self.waiting_tasks.fetch_add(1, Ordering::AcqRel);
                self.shard_tasks[shard_idx].fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Whether `req` could ever be satisfied by the allocation's node shape — the
    /// admission predicate of [`Scheduler::allocate`] and the filter
    /// `Session::submit_tasks` applies before batching (a request merely too wide
    /// for the *current* node set is admissible: allocations are elastic).
    pub fn admissible(&self, req: &ResourceRequest) -> bool {
        matches!(
            self.allocation.check_satisfiable(req),
            Ok(()) | Err(ResourceError::InsufficientResources)
        )
    }

    /// Allocate a slot, blocking (up to `timeout` of real time) until resources are
    /// available. Requests are served in FIFO order within their priority class
    /// (per queue shard), relaxed only by the bounded lookahead window;
    /// task-priority requests additionally wait while any service placement is
    /// pending, so services are never starved by a flood of tasks. A gang request
    /// (`req.nodes > 1`) waits like any other request until enough idle nodes
    /// exist, then claims them atomically — ageing into a backfill reservation
    /// first when it keeps being overtaken (see the module docs).
    pub fn allocate(
        &self,
        req: &ResourceRequest,
        priority: Priority,
        timeout: Duration,
    ) -> Result<Slot, RuntimeError> {
        self.allocate_with_stats(req, priority, timeout)
            .map(|(slot, _)| slot)
    }

    /// [`Scheduler::allocate`], additionally returning [`PlacementStats`]: how often
    /// the request was overtaken and how long it spent draining, for the executor's
    /// gang metrics.
    pub fn allocate_with_stats(
        &self,
        req: &ResourceRequest,
        priority: Priority,
        timeout: Duration,
    ) -> Result<(Slot, PlacementStats), RuntimeError> {
        self.allocate_inner(req, priority, timeout, false)
    }

    /// Re-enter placement after losing a slot to a node failure: parks at the
    /// *front* of the priority-class queue instead of the back, because the request
    /// already waited its turn once. Everything else — service priority, the serve
    /// window, draining, the timeout semantics — behaves exactly like
    /// [`Scheduler::allocate`].
    pub fn requeue(
        &self,
        req: &ResourceRequest,
        priority: Priority,
        timeout: Duration,
    ) -> Result<Slot, RuntimeError> {
        self.requeue_with_stats(req, priority, timeout)
            .map(|(slot, _)| slot)
    }

    /// [`Scheduler::requeue`], additionally returning [`PlacementStats`].
    pub fn requeue_with_stats(
        &self,
        req: &ResourceRequest,
        priority: Priority,
        timeout: Duration,
    ) -> Result<(Slot, PlacementStats), RuntimeError> {
        self.allocate_inner(req, priority, timeout, true)
    }

    fn allocate_inner(
        &self,
        req: &ResourceRequest,
        priority: Priority,
        timeout: Duration,
        requeue: bool,
    ) -> Result<(Slot, PlacementStats), RuntimeError> {
        // Shape mismatches fail fast without ever queueing. A request that is
        // merely too wide for the *current* node set parks instead: allocations
        // are elastic, so a pilot resize can make it placeable later.
        match self.allocation.check_satisfiable(req) {
            Ok(()) | Err(ResourceError::InsufficientResources) => {}
            Err(e) => return Err(RuntimeError::Resource(e)),
        }

        // Resolve the gang packing policy once, up front: an explicit request-level
        // policy wins, otherwise the scheduler's session default applies. Every fit
        // attempt below — fast path, lookahead window, drain, final try — uses the
        // resolved request, so the allocation layer never guesses.
        let req = req.or_packing(self.gang_packing);

        let parked_at = Instant::now();
        let deadline = parked_at + timeout;
        let shard_idx = self.home_shard(priority);
        let mut st = self.shards[shard_idx].lock();

        // Fast path: nothing is parked ahead of this request, try immediately without
        // paying for a queue entry. Deliberately stricter than the serve window —
        // newcomers always queue when anyone of their class waits, so a stream of
        // arrivals can never rotate through the window without recording arrival
        // order. The counters are read under the home-shard lock, so at one queue
        // shard this is exactly the legacy queues-empty check.
        let fast_eligible = match priority {
            Priority::Service => self.waiting_services.load(Ordering::Acquire) == 0,
            Priority::Task => {
                self.waiting_services.load(Ordering::Acquire) == 0
                    && self.waiting_tasks.load(Ordering::Acquire) == 0
            }
        };
        if fast_eligible {
            match self.allocation.allocate_slot_with_stats(&req) {
                Ok((slot, probes)) => {
                    self.outstanding.fetch_add(1, Ordering::AcqRel);
                    return Ok((
                        slot,
                        PlacementStats {
                            shard_probes: probes.shard_probes,
                            ..PlacementStats::default()
                        },
                    ));
                }
                Err(ResourceError::InsufficientResources) => {}
                Err(e) => return Err(RuntimeError::Resource(e)),
            }
        }

        // Slow path: park in arrival order — or, for a node-failure requeue, at the
        // front of the class queue (the request already waited its turn once) — and
        // wait for a targeted wakeup.
        let waiter = Waiter::new();
        self.park(&mut st, shard_idx, &waiter, priority, requeue);
        self.wait_placed(shard_idx, st, &waiter, &req, priority, parked_at, deadline)
    }

    /// The parked-waiter wait loop: runs with the home-shard lock held continuously
    /// (released only inside the condvar wait), attempting placement whenever the
    /// waiter is inside its serve window, opening/consuming a backfill reservation
    /// per the ageing rules, and performing the exit bookkeeping — queue removal,
    /// overtake ticking, drain cleanup, cross-shard wakeup fan-out.
    #[allow(clippy::too_many_arguments)]
    fn wait_placed(
        &self,
        shard_idx: usize,
        mut st: MutexGuard<'_, ShardState>,
        waiter: &Arc<Waiter>,
        req: &ResourceRequest,
        priority: Priority,
        parked_at: Instant,
        deadline: Instant,
    ) -> Result<(Slot, PlacementStats), RuntimeError> {
        // When this waiter began draining (real time), for the drain_secs metric.
        let mut drained_at: Option<Instant> = None;

        let result = loop {
            let queue = match priority {
                Priority::Service => &st.services,
                Priority::Task => &st.tasks,
            };
            // Bounded scan: the waiter can only be eligible within the first
            // `lookahead` entries, so the position probe never walks a deep queue.
            let position = queue
                .iter()
                .take(self.lookahead)
                .position(|w| Arc::ptr_eq(w, waiter));
            let eligible = position.is_some_and(|p| self.in_window(priority, p));
            // Peek the drain gate once per iteration: whether any reservation is
            // active, and whether it is this waiter's.
            let (mut my_drain, any_drain) = {
                let gate = self.drain.lock();
                (
                    gate.as_ref()
                        .filter(|d| Arc::ptr_eq(&d.owner, waiter))
                        .map(|d| d.id),
                    gate.is_some(),
                )
            };
            if my_drain.is_none() {
                // The reservation was cancelled externally (a service parked): this
                // waiter is back to plain waiting, so the drain clock must not keep
                // running — `drain_secs` reports only an interval that ends in a
                // reserved placement.
                drained_at = None;
            }
            if let Some(drain_id) = my_drain {
                // Draining: place through the reservation the moment it is complete.
                if eligible {
                    match self.allocation.allocate_reserved_with_stats(drain_id, req) {
                        Ok((slot, probes)) => break Ok((slot, probes.shard_probes)),
                        Err(ResourceError::InsufficientResources) => {}
                        // The gate peek raced a cross-shard cancellation (a service
                        // parked on shard 0 between the peek and this attempt):
                        // fall back to plain waiting, exactly as if the
                        // cancellation had been observed first. Impossible at one
                        // queue shard, where the gate only changes under the
                        // (single) shard lock.
                        Err(ResourceError::UnknownDrain(_)) => {
                            my_drain = None;
                            drained_at = None;
                        }
                        Err(e) => break Err(RuntimeError::Resource(e)),
                    }
                }
            } else if eligible {
                match self.allocation.allocate_slot_with_stats(req) {
                    Ok((slot, probes)) => break Ok((slot, probes.shard_probes)),
                    Err(ResourceError::InsufficientResources) => {}
                    Err(e) => break Err(RuntimeError::Resource(e)),
                }
                // Placement denied: check whether this head gang has aged out of
                // plain waiting and should open a backfill reservation.
                if self.should_drain(!any_drain, req, priority, position, waiter, parked_at) {
                    let begun = {
                        let mut gate = self.drain.lock();
                        // Re-check under the gate: another shard's head may have
                        // opened a reservation since the peek.
                        if gate.is_some() {
                            None
                        } else {
                            match self.allocation.begin_drain(req) {
                                Ok(id) => {
                                    *gate = Some(ActiveDrain {
                                        id,
                                        owner: Arc::clone(waiter),
                                        priority,
                                    });
                                    Some(Ok(id))
                                }
                                Err(e) => Some(Err(e)),
                            }
                        }
                    };
                    match begun {
                        Some(Ok(id)) => {
                            my_drain = Some(id);
                            drained_at = Some(Instant::now());
                            // The already-idle nodes may complete the reservation
                            // outright.
                            match self.allocation.allocate_reserved_with_stats(id, req) {
                                Ok((slot, probes)) => break Ok((slot, probes.shard_probes)),
                                Err(ResourceError::InsufficientResources) => {}
                                Err(e) => break Err(RuntimeError::Resource(e)),
                            }
                        }
                        // Raced by another allocation user — or the pilot is
                        // currently too small for the gang; retry on a later wakeup.
                        Some(Err(ResourceError::DrainActive))
                        | Some(Err(ResourceError::InsufficientResources))
                        | None => {}
                        Some(Err(e)) => break Err(RuntimeError::Resource(e)),
                    }
                }
            }
            if Instant::now() >= deadline {
                // Explicit final attempt after the timeout: capacity may have freed
                // while this waiter was outside the window (or between the last wait
                // and the deadline). Service priority is still honoured — a task makes
                // its last-gasp attempt only when no service is waiting.
                let may_final_try = priority == Priority::Service
                    || self.waiting_services.load(Ordering::Acquire) == 0;
                if may_final_try {
                    let attempt = match my_drain {
                        Some(id) => match self.allocation.allocate_reserved_with_stats(id, req) {
                            // Reservation cancelled under us: the plain path is
                            // still worth the last try.
                            Err(ResourceError::UnknownDrain(_)) => {
                                self.allocation.allocate_slot_with_stats(req)
                            }
                            other => other,
                        },
                        None => self.allocation.allocate_slot_with_stats(req),
                    }
                    .map(|(slot, probes)| (slot, probes.shard_probes));
                    match attempt {
                        Ok(placed) => break Ok(placed),
                        Err(ResourceError::InsufficientResources) => {}
                        Err(e) => break Err(RuntimeError::Resource(e)),
                    }
                }
                let shape = format!("{} cores / {} gpus", req.cores, req.gpus);
                break Err(RuntimeError::WaitTimeout {
                    entity: "scheduler".to_string(),
                    awaited: if req.nodes > 1 {
                        format!("{} nodes x ({shape}) gang", req.nodes)
                    } else {
                        shape
                    },
                });
            }
            // An ageing-eligible gang that is not yet draining must wake at its drain
            // deadline, not only on releases. Once the threshold has passed (or when
            // draining/ineligible), wait on the request deadline alone — state
            // changes that matter always come with a targeted wakeup.
            let mut wake_at = deadline;
            if my_drain.is_none() && !any_drain && req.is_gang() {
                if let Some(after) = self.gang_drain_after {
                    let drain_deadline = parked_at + after;
                    if drain_deadline > Instant::now() {
                        wake_at = wake_at.min(drain_deadline);
                    }
                }
            }
            waiter.cond.wait_until(&mut st, wake_at);
        };

        // Drain cleanup: if this waiter still owns the reservation, release it.
        // After a successful reserved placement the allocation side is already
        // consumed, so the cancel inside is a no-op error that is ignored; on a
        // timeout or error it returns every pinned node to the idle bucket.
        self.cancel_drain_if(|d| Arc::ptr_eq(&d.owner, waiter));

        // Overtake bookkeeping: this waiter placing while earlier arrivals of its
        // class stay parked ages each of them one tick (the head is what the drain
        // trigger watches). Positions ahead are within the window except on the rare
        // post-timeout final attempt, so the scan is O(lookahead) in steady state.
        let mut age_sibling_shards = false;
        if result.is_ok() {
            let queue = match priority {
                Priority::Service => &st.services,
                Priority::Task => &st.tasks,
            };
            if let Some(my_pos) = queue.iter().position(|w| Arc::ptr_eq(w, waiter)) {
                for overtaken in queue.iter().take(my_pos) {
                    overtaken.overtakes.fetch_add(1, Ordering::Relaxed);
                }
            }
            age_sibling_shards = priority == Priority::Task && self.shards.len() > 1;
        }

        // Leave the queue. The departure shifts everyone behind this waiter one
        // position forward, so a new waiter may have entered the window (a departing
        // service can unblock tasks, a successful head may leave capacity for its
        // successor): pass the wakeup on below, after the shard lock drops.
        match priority {
            Priority::Service => {
                if let Some(idx) = st.services.iter().position(|w| Arc::ptr_eq(w, waiter)) {
                    st.services.remove(idx);
                    self.waiting_services.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Priority::Task => {
                if let Some(idx) = st.tasks.iter().position(|w| Arc::ptr_eq(w, waiter)) {
                    st.tasks.remove(idx);
                    self.waiting_tasks.fetch_sub(1, Ordering::AcqRel);
                    self.shard_tasks[shard_idx].fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
        if result.is_ok() {
            self.outstanding.fetch_add(1, Ordering::AcqRel);
        }
        drop(st);

        // Cross-shard ageing: arrival order across task shards is not tracked, so a
        // successful placement conservatively ages the parked head of every other
        // task shard one tick — the head is what the drain trigger watches, and
        // erring toward draining sooner keeps starvation bounded exactly as with
        // one shard. Shards are visited one at a time with no other lock held.
        if age_sibling_shards {
            for (idx, shard) in self.shards.iter().enumerate() {
                if idx == shard_idx || self.shard_tasks[idx].load(Ordering::Acquire) == 0 {
                    continue;
                }
                if let Some(head) = shard.lock().tasks.front() {
                    head.overtakes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        self.wake_windows();
        result.map(|(slot, shard_probes)| {
            (
                slot,
                PlacementStats {
                    overtakes: waiter.overtakes.load(Ordering::Relaxed),
                    drain_secs: drained_at.map(|t| t.elapsed().as_secs_f64()),
                    shard_probes,
                },
            )
        })
    }

    /// Admit a burst of requests in one pass: every entry is validated against the
    /// node shape (the whole batch is rejected on the first impossible request —
    /// pre-filter with [`Scheduler::admissible`] to keep mixed batches alive), home
    /// shards are assigned in submission order, and the waiters are appended with
    /// one lock round-trip per *touched* queue shard. Returns one
    /// [`AdmissionTicket`] per request plus the admission's per-shard fan-out
    /// shape. The window wake after admission lets already-free capacity serve the
    /// batch heads immediately.
    pub fn submit_batch(
        &self,
        requests: &[(ResourceRequest, Priority)],
    ) -> Result<BatchAdmission, RuntimeError> {
        for (req, _) in requests {
            match self.allocation.check_satisfiable(req) {
                Ok(()) | Err(ResourceError::InsufficientResources) => {}
                Err(e) => return Err(RuntimeError::Resource(e)),
            }
        }
        let shard_count = self.shards.len();
        // Home shards in submission order, so the rotor striping matches what
        // one-by-one submission would have produced.
        let assignments: Vec<usize> = requests
            .iter()
            .map(|(_, priority)| self.home_shard(*priority))
            .collect();
        let mut tickets: Vec<Option<AdmissionTicket>> = requests.iter().map(|_| None).collect();
        let mut shard_batches = vec![0usize; shard_count];
        let mut admitted_service = false;
        for (shard_idx, shard_batch) in shard_batches.iter_mut().enumerate() {
            let mut guard: Option<MutexGuard<'_, ShardState>> = None;
            for (i, (req, priority)) in requests.iter().enumerate() {
                if assignments[i] != shard_idx {
                    continue;
                }
                let st = guard.get_or_insert_with(|| self.shards[shard_idx].lock());
                let waiter = Waiter::new();
                let queue = match priority {
                    Priority::Service => &mut st.services,
                    Priority::Task => &mut st.tasks,
                };
                queue.push_back(Arc::clone(&waiter));
                match priority {
                    Priority::Service => {
                        self.waiting_services.fetch_add(1, Ordering::AcqRel);
                        admitted_service = true;
                    }
                    Priority::Task => {
                        self.waiting_tasks.fetch_add(1, Ordering::AcqRel);
                        self.shard_tasks[shard_idx].fetch_add(1, Ordering::AcqRel);
                    }
                }
                *shard_batch += 1;
                tickets[i] = Some(AdmissionTicket {
                    waiter,
                    shard: shard_idx,
                    req: req.or_packing(self.gang_packing),
                    priority: *priority,
                });
            }
        }
        // Service priority extends to reservations, batched or not: an admitted
        // service cancels an active task-class drain.
        if admitted_service {
            self.cancel_drain_if(|d| d.priority == Priority::Task);
        }
        let mut shard_wakeups = vec![0usize; shard_count];
        self.wake_windows_recording(Some(&mut shard_wakeups));
        Ok(BatchAdmission {
            tickets: tickets
                .into_iter()
                .map(|t| t.expect("every request was assigned a shard"))
                .collect(),
            shard_batches,
            shard_wakeups,
        })
    }

    /// Consume an [`AdmissionTicket`]: block (up to `timeout` of real time) until
    /// the admitted request places, exactly like [`Scheduler::allocate`] from the
    /// parked state. The gang-ageing clock starts at this call, not at admission.
    pub fn allocate_admitted(
        &self,
        ticket: AdmissionTicket,
        timeout: Duration,
    ) -> Result<Slot, RuntimeError> {
        self.allocate_admitted_with_stats(ticket, timeout)
            .map(|(slot, _)| slot)
    }

    /// [`Scheduler::allocate_admitted`], additionally returning [`PlacementStats`].
    pub fn allocate_admitted_with_stats(
        &self,
        ticket: AdmissionTicket,
        timeout: Duration,
    ) -> Result<(Slot, PlacementStats), RuntimeError> {
        let AdmissionTicket {
            waiter,
            shard,
            req,
            priority,
        } = ticket;
        let parked_at = Instant::now();
        let deadline = parked_at + timeout;
        let st = self.shards[shard].lock();
        self.wait_placed(shard, st, &waiter, &req, priority, parked_at, deadline)
    }

    /// Abandon an [`AdmissionTicket`] without placing: the waiter leaves its queue
    /// and the window wake passes on, so the FIFO behind it is not blocked. Used by
    /// the executor when an admitted task errors before reaching allocation.
    pub fn cancel_admitted(&self, ticket: AdmissionTicket) {
        let AdmissionTicket {
            waiter,
            shard,
            priority,
            ..
        } = ticket;
        {
            let mut st = self.shards[shard].lock();
            match priority {
                Priority::Service => {
                    if let Some(idx) = st.services.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
                        st.services.remove(idx);
                        self.waiting_services.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                Priority::Task => {
                    if let Some(idx) = st.tasks.iter().position(|w| Arc::ptr_eq(w, &waiter)) {
                        st.tasks.remove(idx);
                        self.waiting_tasks.fetch_sub(1, Ordering::AcqRel);
                        self.shard_tasks[shard].fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
        }
        self.cancel_drain_if(|d| Arc::ptr_eq(&d.owner, &waiter));
        self.wake_windows();
    }

    /// Release a previously allocated slot and wake the waiters in the serve window.
    ///
    /// A slot whose node failed ([`ResourceError::NodeFailed`]) was already reclaimed
    /// by the eviction: the scheduler still retires it from its outstanding count and
    /// passes the wakeup on, and the error is surfaced only so the caller can tell
    /// the eviction path from an ordinary release.
    pub fn release(&self, slot: &Slot) -> Result<(), RuntimeError> {
        let result = self.allocation.release_slot(slot);
        match result {
            Ok(()) | Err(ResourceError::NodeFailed(_)) => {
                let _ = self
                    .outstanding
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        Some(n.saturating_sub(1))
                    });
                self.wake_windows();
                result.map_err(RuntimeError::Resource)
            }
            Err(e) => Err(RuntimeError::Resource(e)),
        }
    }

    /// Whether `slot` was evicted by a node failure and no longer backs any
    /// resources. The executor polls this while a task runs to detect that the task
    /// must be requeued.
    pub fn slot_lost(&self, slot: &Slot) -> bool {
        self.allocation.slot_evicted(slot.id)
    }

    /// Re-probe parked waiters after capacity appeared without a release — e.g. the
    /// pilot expanded its allocation. Releases wake the window themselves; this is
    /// for capacity that arrives out of band. The fan-out only visits shards whose
    /// classes could place: the service window on shard 0 shields everything while
    /// a service waits, and task shards with no parked tasks are skipped without
    /// taking their locks.
    pub fn notify_capacity(&self) {
        self.wake_windows();
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_platform::batch::{AllocationRequest, BatchSystem};
    use hpcml_platform::PlatformId;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    fn scheduler(platform: PlatformId, nodes: usize) -> Scheduler {
        scheduler_with_lookahead(platform, nodes, 1)
    }

    fn scheduler_with_lookahead(platform: PlatformId, nodes: usize, lookahead: usize) -> Scheduler {
        let batch = BatchSystem::new(platform.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        Scheduler::with_lookahead(alloc, lookahead)
    }

    fn gpus(n: u32) -> ResourceRequest {
        ResourceRequest::gpus(n).unwrap()
    }

    fn cores(n: u32) -> ResourceRequest {
        ResourceRequest::cores(n).unwrap()
    }

    /// Poll until `pred` holds (bounded at 5 s), so queue-depth assertions do not race
    /// thread start-up on a loaded host.
    fn wait_until(s: &Scheduler, what: &str, pred: impl Fn(&Scheduler) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pred(s) {
            assert!(Instant::now() < deadline, "timed out waiting for: {what}");
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let s = scheduler(PlatformId::Local, 1); // 8 cores, 2 gpus
        let slot = s
            .allocate(&gpus(1), Priority::Service, Duration::from_secs(1))
            .unwrap();
        assert_eq!(slot.num_gpus(), 1);
        assert_eq!(s.outstanding_slots(), 1);
        s.release(&slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().free_gpus(), 2);
        assert_eq!(s.lookahead(), 1);
    }

    #[test]
    fn gang_wider_than_pilot_parks_and_places_after_expand() {
        // A 2-node gang against a 1-node allocation must PARK (the pilot can
        // grow), not fail fast as never-satisfiable — the elastic-pilot race
        // where submit beats resize.
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let s1 = Arc::clone(&s);
        let parked = thread::spawn(move || {
            s1.allocate(
                &cores(1).with_nodes(2),
                Priority::Task,
                Duration::from_secs(10),
            )
        });
        wait_until(&s, "too-wide gang parked", |s| s.waiting_tasks() == 1);
        s.allocation().expand(1).unwrap();
        s.notify_capacity();
        let gang = parked.join().unwrap().expect("gang places once grown");
        assert_eq!(gang.num_nodes(), 2);
        s.release(&gang).unwrap();
    }

    #[test]
    fn never_satisfiable_request_errors_immediately() {
        let s = scheduler(PlatformId::Local, 1);
        let err = s
            .allocate(&cores(1024), Priority::Task, Duration::from_secs(5))
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Resource(ResourceError::NeverSatisfiable { .. })
        ));
    }

    #[test]
    fn allocation_times_out_under_pressure() {
        let s = scheduler(PlatformId::Local, 1);
        let _hold = s
            .allocate(&gpus(2), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let err = s
            .allocate(&gpus(1), Priority::Task, Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::WaitTimeout { .. }));
        assert_eq!(
            s.waiting_tasks(),
            0,
            "timed-out waiter must leave the queue"
        );
    }

    #[test]
    fn post_timeout_final_attempt_succeeds_when_capacity_frees_late() {
        // Deterministic exercise of the explicit post-timeout attempt: one free GPU
        // exists the whole time, but the queue head (W1) needs two and never fits, so
        // the waiter behind it (W2) can obtain the free GPU *only* through the final
        // attempt at its deadline — never through head eligibility.
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 2 gpus
        let hold = s
            .allocate(&gpus(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s1 = Arc::clone(&s);
        let head =
            thread::spawn(move || s1.allocate(&gpus(2), Priority::Task, Duration::from_secs(10)));
        // Let W1 park at the head before W2 arrives.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(s.waiting_tasks(), 1);
        let s2 = Arc::clone(&s);
        let behind = thread::spawn(move || {
            s2.allocate(&gpus(1), Priority::Task, Duration::from_millis(100))
        });
        let got = behind.join().unwrap();
        assert!(
            got.is_ok(),
            "final attempt must claim the free GPU at the deadline: {got:?}"
        );
        // Unblock the head and let it finish.
        s.release(&got.unwrap()).unwrap();
        s.release(&hold).unwrap();
        let head_slot = head.join().unwrap().unwrap();
        assert_eq!(head_slot.num_gpus(), 2);
        s.release(&head_slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn blocked_allocation_wakes_on_release() {
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let slot = s
            .allocate(&gpus(2), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s2 = Arc::clone(&s);
        let waiter =
            thread::spawn(move || s2.allocate(&gpus(1), Priority::Task, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        s.release(&slot).unwrap();
        let got = waiter.join().unwrap().unwrap();
        assert_eq!(got.num_gpus(), 1);
    }

    #[test]
    fn services_have_priority_over_tasks() {
        // 2 GPUs total. A task holds both; a service and a task are both waiting.
        // When the GPUs free up one by one, the service must be placed first.
        let s = Arc::new(scheduler(PlatformId::Local, 1));
        let hold_a = s
            .allocate(&gpus(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&gpus(1), Priority::Task, Duration::from_secs(1))
            .unwrap();

        let s_svc = Arc::clone(&s);
        let svc_waiter = thread::spawn(move || {
            s_svc
                .allocate(&gpus(1), Priority::Service, Duration::from_secs(5))
                .map(|slot| ("service", slot))
        });
        // Give the service waiter time to register.
        thread::sleep(Duration::from_millis(30));
        let s_task = Arc::clone(&s);
        let task_waiter = thread::spawn(move || {
            s_task
                .allocate(&gpus(1), Priority::Task, Duration::from_secs(5))
                .map(|slot| ("task", slot))
        });
        thread::sleep(Duration::from_millis(30));

        // Free exactly one GPU: only the service should obtain it.
        s.release(&hold_a).unwrap();
        let (who, _slot) = svc_waiter.join().unwrap().unwrap();
        assert_eq!(who, "service");
        // The task is still waiting; freeing the second GPU unblocks it.
        s.release(&hold_b).unwrap();
        let (who, _slot) = task_waiter.join().unwrap().unwrap();
        assert_eq!(who, "task");
    }

    #[test]
    fn waiters_are_served_in_fifo_order() {
        // One GPU cycles through three parked waiters; completion order must match
        // arrival order (the old condvar implementation gave no such guarantee).
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 2 gpus
        let hold = s
            .allocate(&gpus(2), Priority::Task, Duration::from_secs(5))
            .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for i in 0..3 {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            waiters.push(thread::spawn(move || {
                let slot = s2
                    .allocate(&gpus(1), Priority::Task, Duration::from_secs(10))
                    .unwrap();
                order2.lock().push(i);
                // Hold briefly so the next waiter is definitely parked, then recycle.
                thread::sleep(Duration::from_millis(10));
                s2.release(&slot).unwrap();
            }));
            // Ensure arrival order i = park order.
            thread::sleep(Duration::from_millis(30));
        }
        assert_eq!(s.waiting_tasks(), 3);
        s.release(&hold).unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(
            *order.lock(),
            vec![0, 1, 2],
            "FIFO wait queue must serve in arrival order"
        );
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn gang_parks_until_enough_nodes_idle_then_claims_atomically() {
        // 2-node allocation; both nodes carry a single-node slot, so a 2-node gang
        // must park. Releasing both slots frees two idle nodes and the gang claims
        // them as a unit.
        let s = Arc::new(scheduler(PlatformId::Local, 2));
        let hold_a = s
            .allocate(&cores(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        assert_ne!(hold_a.node_index(), hold_b.node_index());
        let s2 = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s2.allocate(
                &cores(4).with_nodes(2),
                Priority::Task,
                Duration::from_secs(30),
            )
        });
        wait_until(&s, "gang parked", |s| s.waiting_tasks() == 1);
        // One idle node is not enough: the gang must remain parked. (Asserting an
        // unchanged state, so a fixed grace period is race-free — the gang's distant
        // deadline cannot remove it from the queue meanwhile.)
        s.release(&hold_a).unwrap();
        thread::sleep(Duration::from_millis(50));
        assert_eq!(s.waiting_tasks(), 1, "gang still parked on one idle node");
        s.release(&hold_b).unwrap();
        let gang = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 2);
        assert_eq!(gang.num_cores(), 8);
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().idle_nodes(), 2);
    }

    #[test]
    fn lookahead_serves_fitting_tasks_behind_a_blocked_gang() {
        // Local: 2 nodes x 8 cores. Node A carries one pinned core (never released
        // during the blocking phase), node B is fully held. A Whole-packed 2-node
        // gang parks at the head (partial packing would co-locate beside the pin the
        // moment node B frees — this test needs a durably blocked head); a
        // whole-node task behind it fits node B the moment it frees.
        let s = Arc::new(scheduler_with_lookahead(PlatformId::Local, 2, 2));
        let pin = s
            .allocate(&cores(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s1 = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s1.allocate(
                &cores(4).with_nodes(2).with_packing(GangPacking::Whole),
                Priority::Task,
                Duration::from_secs(30),
            )
        });
        wait_until(&s, "gang parked at the head", |s| s.waiting_tasks() == 1);
        let s2 = Arc::clone(&s);
        let narrow_waiter =
            thread::spawn(move || s2.allocate(&cores(8), Priority::Task, Duration::from_secs(30)));
        wait_until(&s, "narrow task parked behind the gang", |s| {
            s.waiting_tasks() == 2
        });
        // Free node B: the gang at the head still cannot fit (node A is pinned), but
        // the narrow task inside the lookahead window must be served.
        s.release(&hold_b).unwrap();
        let narrow = narrow_waiter.join().unwrap().unwrap();
        assert_eq!(narrow.num_cores(), 8);
        assert_eq!(s.waiting_tasks(), 1, "gang keeps its place at the head");
        // Unblock the gang: release the narrow slot and the pin.
        s.release(&narrow).unwrap();
        s.release(&pin).unwrap();
        let gang = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 2);
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn lookahead_never_lets_tasks_overtake_waiting_services() {
        // Service priority is absolute for every window size: with lookahead 4, a
        // newcomer task that would fit must still queue behind a parked service, and
        // freed capacity goes to the service first.
        let s = Arc::new(scheduler_with_lookahead(PlatformId::Local, 1, 4)); // 2 gpus
        let hold = s
            .allocate(&gpus(2), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s_svc = Arc::clone(&s);
        let svc = thread::spawn(move || {
            s_svc.allocate(&gpus(2), Priority::Service, Duration::from_secs(30))
        });
        wait_until(&s, "service parked", |s| s.waiting_services() == 1);
        let s_task = Arc::clone(&s);
        let task = thread::spawn(move || {
            s_task.allocate(&gpus(1), Priority::Task, Duration::from_secs(30))
        });
        wait_until(
            &s,
            "newcomer task parked while a service waits, even inside the window",
            |s| s.waiting_tasks() == 1,
        );
        s.release(&hold).unwrap();
        let svc_slot = svc.join().unwrap().unwrap();
        assert_eq!(
            svc_slot.num_gpus(),
            2,
            "service takes the freed capacity first"
        );
        s.release(&svc_slot).unwrap();
        let task_slot = task.join().unwrap().unwrap();
        s.release(&task_slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn strict_fifo_blocks_tasks_behind_a_parked_gang() {
        // Contrast case for the lookahead test: with the default lookahead of 1, the
        // same narrow task behind a blocked (Whole-packed) gang stays parked even
        // while node B sits free (head-of-line blocking is the documented price of
        // strict FIFO).
        let s = Arc::new(scheduler(PlatformId::Local, 2));
        let pin = s
            .allocate(&cores(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s1 = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s1.allocate(
                &cores(4).with_nodes(2).with_packing(GangPacking::Whole),
                Priority::Task,
                Duration::from_secs(30),
            )
        });
        wait_until(&s, "gang parked at the head", |s| s.waiting_tasks() == 1);
        s.release(&hold_b).unwrap();
        let s2 = Arc::clone(&s);
        let narrow_waiter =
            thread::spawn(move || s2.allocate(&cores(8), Priority::Task, Duration::from_secs(30)));
        wait_until(&s, "narrow task parked behind the gang", |s| {
            s.waiting_tasks() == 2
        });
        // Both waiters' deadlines are far away, so "still parked after a grace
        // period" is a race-free way to observe that strict FIFO refuses to serve
        // the narrow task while node B idles behind the blocked gang.
        thread::sleep(Duration::from_millis(100));
        assert_eq!(
            s.waiting_tasks(),
            2,
            "strict FIFO must keep the narrow task parked behind the gang"
        );
        // Unblock in order: the gang claims both nodes, then the narrow task fits.
        s.release(&pin).unwrap();
        let gang = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 2);
        s.release(&gang).unwrap();
        let narrow = narrow_waiter.join().unwrap().unwrap();
        s.release(&narrow).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    /// Acceptance scenario, drain ON: a 4-node whole-node gang parked behind a stream
    /// of 1-node whole-node tasks places within its overtake budget once draining,
    /// because every node the stream releases is pinned to the reservation. With
    /// more than one queue shard the stream lands on sibling shards and the gang is
    /// aged by the cross-shard head ticking instead of same-queue overtakes.
    fn draining_gang_places_within_its_overtake_budget_at(queue_shards: usize) {
        const MAX_OVERTAKES: u32 = 3;
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(4)).unwrap();
        let cores_per_node = alloc.node_spec().cores;
        let s = Arc::new(
            Scheduler::with_lookahead(alloc, 2)
                .with_max_overtakes(Some(MAX_OVERTAKES))
                .with_queue_shards(Some(queue_shards)),
        );
        let narrow = cores(cores_per_node); // whole single node
        let gang_req = cores(cores_per_node).with_nodes(4); // all four nodes, idle

        // One node busy at all times, so the gang can never place directly.
        let mut hold = Some(
            s.allocate(&narrow, Priority::Task, Duration::from_secs(1))
                .unwrap(),
        );
        let s_gang = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s_gang.allocate_with_stats(&gang_req, Priority::Task, Duration::from_secs(30))
        });
        wait_until(&s, "gang parked at the head", |s| s.waiting_tasks() == 1);

        // Stream of whole-node tasks: allocate the next before releasing the
        // previous, so some node is always busy. Every successful placement
        // overtakes the parked gang once; once the budget is spent the gang drains,
        // newly idle nodes are pinned, and the stream stops fitting.
        let mut overtakes = 0u32;
        let bound = MAX_OVERTAKES + 2; // budget exceeded at MAX_OVERTAKES + 1
        for round in 0..20 {
            if overtakes > MAX_OVERTAKES {
                // The budget is spent: the head will drain on its next wakeup. Wait
                // for the reservation instead of racing it with another placement,
                // so the cutoff is deterministic under any thread scheduling.
                wait_until(&s, "gang draining after its budget was spent", |s| {
                    s.allocation().drain_status().is_some()
                });
            }
            match s.allocate(&narrow, Priority::Task, Duration::from_millis(300)) {
                Ok(next) => {
                    overtakes += 1;
                    assert!(
                        overtakes <= bound,
                        "stream still placing after {overtakes} overtakes: \
                         draining must cut it off near the budget of {MAX_OVERTAKES}"
                    );
                    s.release(&hold.take().unwrap()).unwrap();
                    hold = Some(next);
                }
                Err(e) => {
                    // The reservation has swallowed the idle nodes: release the last
                    // held node so the drain completes.
                    assert!(matches!(e, RuntimeError::WaitTimeout { .. }), "{e:?}");
                    assert!(
                        round as u32 >= MAX_OVERTAKES,
                        "stream starved before the gang's budget was even spent"
                    );
                    s.release(&hold.take().unwrap()).unwrap();
                    break;
                }
            }
        }
        assert!(hold.is_none(), "stream must hit the reservation wall");
        let (gang, stats) = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 4);
        assert!(
            stats.overtakes > MAX_OVERTAKES,
            "drain must have been triggered by the overtake budget: {stats:?}"
        );
        assert!(
            stats.drain_secs.is_some(),
            "placement must have come through the reservation: {stats:?}"
        );
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().idle_nodes(), 4);
        assert_eq!(s.allocation().reserved_nodes(), 0);
    }

    #[test]
    fn draining_gang_places_within_its_overtake_budget() {
        draining_gang_places_within_its_overtake_budget_at(1);
    }

    #[test]
    fn draining_gang_places_within_its_overtake_budget_with_four_queue_shards() {
        draining_gang_places_within_its_overtake_budget_at(4);
    }

    /// Acceptance contrast, drain OFF: the identical scenario with draining disabled
    /// reproduces the PR-2 starvation — the stream overtakes the gang indefinitely.
    #[test]
    fn drain_off_reproduces_unbounded_overtaking() {
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(4)).unwrap();
        let cores_per_node = alloc.node_spec().cores;
        let s = Arc::new(
            Scheduler::with_lookahead(alloc, 2)
                .with_max_overtakes(None)
                .with_gang_drain_after(None),
        );
        assert_eq!(s.max_overtakes(), None);
        assert_eq!(s.gang_drain_after(), None);
        let narrow = cores(cores_per_node);
        let gang_req = cores(cores_per_node).with_nodes(4);

        let mut hold = s
            .allocate(&narrow, Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s_gang = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s_gang.allocate(&gang_req, Priority::Task, Duration::from_secs(30))
        });
        wait_until(&s, "gang parked at the head", |s| s.waiting_tasks() == 1);

        // Far beyond any reasonable budget: every round must keep placing.
        for _ in 0..24 {
            let next = s
                .allocate(&narrow, Priority::Task, Duration::from_secs(5))
                .expect("with draining off the stream must never be cut off");
            s.release(&hold).unwrap();
            hold = next;
        }
        assert_eq!(s.waiting_tasks(), 1, "gang still starving at the head");
        assert_eq!(
            s.allocation().reserved_nodes(),
            0,
            "no reservation ever opened"
        );
        // Stop the stream: the gang finally fits.
        s.release(&hold).unwrap();
        let gang = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 4);
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    /// Occupy a 4-node Delta allocation with one 24-core *resident* slot per node
    /// (held for the caller to release at the end) plus one 24-core *churn* slot per
    /// node (returned for the test to cycle). Pairs land on distinct nodes because a
    /// node carrying both has only 16 free cores — too few for the next pair's
    /// resident — so every node ends up busy with 16 cores of headroom and is never
    /// fully idle while its resident runs.
    fn subnode_churn_fixture(s: &Scheduler) -> (Vec<Slot>, std::collections::VecDeque<Slot>) {
        let mut residents = Vec::new();
        let mut churn = std::collections::VecDeque::new();
        for _ in 0..4 {
            let r = s
                .allocate(&cores(24), Priority::Task, Duration::from_secs(1))
                .unwrap();
            let c = s
                .allocate(&cores(24), Priority::Task, Duration::from_secs(1))
                .unwrap();
            assert_eq!(r.node_index(), c.node_index(), "pairs share a node");
            residents.push(r);
            churn.push_back(c);
        }
        assert_eq!(s.allocation().idle_nodes(), 0);
        (residents, churn)
    }

    /// Acceptance scenario, partial packing: a draining 4-node gang under continuous
    /// sub-node churn — tasks sized so no node ever fully idles — places within its
    /// overtake budget, because each churn release frees one member share of
    /// headroom (40 ≥ 32 cores) and partial pinning captures it while the resident
    /// slots keep running.
    fn partial_drain_places_gang_under_subnode_churn_within_budget_at(queue_shards: usize) {
        const MAX_OVERTAKES: u32 = 3;
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(4)).unwrap();
        let s = Arc::new(
            Scheduler::with_lookahead(Arc::clone(&alloc), 2)
                .with_max_overtakes(Some(MAX_OVERTAKES))
                .with_queue_shards(Some(queue_shards)),
        );
        assert_eq!(s.gang_packing(), GangPacking::Partial, "session default");
        let (residents, mut churn) = subnode_churn_fixture(&s);
        // Half-node member shares: 32 ≤ 40 (free once a churn slot leaves a node),
        // but > 16 (free while both pair slots run) — the gang can never place while
        // the churn stream keeps refilling, yet any churn departure frees a share.
        let gang_req = cores(32).with_nodes(4);
        let s_gang = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s_gang.allocate_with_stats(&gang_req, Priority::Task, Duration::from_secs(30))
        });
        wait_until(&s, "gang parked at the head", |s| s.waiting_tasks() == 1);

        let mut overtakes = 0u32;
        for round in 0..20 {
            // Once the last churn slot has been swallowed by the reservation the
            // gang places and consumes the drain — nothing left to cycle.
            let Some(old) = churn.pop_front() else { break };
            if overtakes > MAX_OVERTAKES {
                // Budget spent: the head drains on its next wakeup. Wait for the
                // reservation instead of racing it, so the cutoff is deterministic.
                wait_until(&s, "gang draining after its budget was spent", |s| {
                    s.allocation().drain_status().is_some()
                });
            }
            s.release(&old).unwrap();
            assert_eq!(
                alloc.idle_nodes(),
                0,
                "sub-node churn must never idle a node (residents keep running)"
            );
            match s.allocate(&cores(24), Priority::Task, Duration::from_millis(300)) {
                Ok(next) => {
                    overtakes += 1;
                    assert!(
                        overtakes <= MAX_OVERTAKES + 2,
                        "churn still placing after {overtakes} overtakes: partial \
                         draining must cut it off near the budget of {MAX_OVERTAKES}"
                    );
                    churn.push_back(next);
                }
                Err(e) => {
                    // The reservation pinned the freed headroom: the churn stream
                    // has hit the wall; keep releasing the remaining slots so the
                    // drain completes.
                    assert!(matches!(e, RuntimeError::WaitTimeout { .. }), "{e:?}");
                    assert!(
                        round as u32 >= MAX_OVERTAKES,
                        "churn starved before the gang's budget was even spent"
                    );
                }
            }
        }
        assert!(churn.is_empty(), "churn must hit the reservation wall");
        let (gang, stats) = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 4);
        assert_eq!(
            gang.partial_nodes(),
            4,
            "every member placed beside a still-running resident slot"
        );
        assert!(
            stats.overtakes > MAX_OVERTAKES,
            "drain must have been triggered by the overtake budget: {stats:?}"
        );
        assert!(
            stats.drain_secs.is_some(),
            "drain_secs must be recorded when the drain resolves via partial pinning: {stats:?}"
        );
        assert_eq!(alloc.idle_nodes(), 0, "residents are still co-tenants");
        s.release(&gang).unwrap();
        for r in &residents {
            s.release(r).unwrap();
        }
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(alloc.idle_nodes(), 4);
        assert_eq!(alloc.reserved_nodes(), 0);
    }

    #[test]
    fn partial_drain_places_gang_under_subnode_churn_within_budget() {
        partial_drain_places_gang_under_subnode_churn_within_budget_at(1);
    }

    #[test]
    fn partial_drain_places_gang_under_subnode_churn_within_budget_with_four_queue_shards() {
        partial_drain_places_gang_under_subnode_churn_within_budget_at(4);
    }

    /// Acceptance contrast, `Whole` packing: the identical sub-node churn scenario
    /// stalls the gang indefinitely — the drain opens but pins nothing, because no
    /// node ever goes fully idle (bounded-time check: the churn stream keeps placing
    /// far past the overtake budget). Stopping the churn *and* the residents finally
    /// idles the nodes and the gang places.
    #[test]
    fn whole_packing_gang_stalls_under_subnode_churn() {
        const MAX_OVERTAKES: u32 = 3;
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(4)).unwrap();
        let s = Arc::new(
            Scheduler::with_lookahead(Arc::clone(&alloc), 2)
                .with_max_overtakes(Some(MAX_OVERTAKES)),
        );
        let (residents, mut churn) = subnode_churn_fixture(&s);
        // The task pins Whole packing (old behaviour) while the session default
        // stays Partial — the per-request override is what reproduces the delay.
        let gang_req = cores(32).with_nodes(4).with_packing(GangPacking::Whole);
        let s_gang = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s_gang.allocate_with_stats(&gang_req, Priority::Task, Duration::from_secs(30))
        });
        wait_until(&s, "gang parked at the head", |s| s.waiting_tasks() == 1);

        // Far beyond the budget: every round must keep placing, because releases
        // never idle a node, so the Whole-packing drain can never pin one.
        for round in 0..12 {
            let old = churn.pop_front().unwrap();
            s.release(&old).unwrap();
            let next = s
                .allocate(&cores(24), Priority::Task, Duration::from_secs(5))
                .unwrap_or_else(|e| {
                    panic!("churn round {round} must place under Whole packing: {e:?}")
                });
            churn.push_back(next);
            assert_eq!(alloc.idle_nodes(), 0);
            assert_eq!(
                alloc.reserved_nodes(),
                0,
                "a Whole drain must not pin busy nodes"
            );
        }
        assert_eq!(s.waiting_tasks(), 1, "gang still starving at the head");
        // Stop the churn and the residents: nodes idle out, the drain (or a direct
        // idle-bucket claim) finally serves the gang.
        for slot in churn.iter().chain(residents.iter()) {
            s.release(slot).unwrap();
        }
        let (gang, _stats) = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 4);
        assert_eq!(gang.partial_nodes(), 0, "whole members land on idle nodes");
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(alloc.reserved_nodes(), 0);
    }

    /// A draining gang that times out cancels its reservation on the way out: every
    /// pinned node returns to the idle bucket and stays placeable.
    #[test]
    fn drain_timeout_cancels_reservation_and_restores_idle_nodes() {
        let batch = BatchSystem::new(PlatformId::Local.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(2)).unwrap();
        // Age-triggered drain: flips almost immediately once parked.
        let s = Arc::new(
            Scheduler::with_lookahead(alloc, 2)
                .with_max_overtakes(None)
                .with_gang_drain_after(Some(Duration::from_millis(20))),
        );
        // One core pinned on one node: a 2-node gang can never complete, but the
        // other (idle) node gets pinned by its reservation once draining starts.
        let pin = s
            .allocate(&cores(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let err = s
            .allocate(
                &cores(8).with_nodes(2),
                Priority::Task,
                Duration::from_millis(300),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::WaitTimeout { .. }));
        assert_eq!(
            s.allocation().reserved_nodes(),
            0,
            "timed-out drain must not leak its pinned nodes"
        );
        assert_eq!(s.waiting_tasks(), 0);
        // The previously pinned node is placeable again.
        let whole = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        s.release(&whole).unwrap();
        s.release(&pin).unwrap();
        assert_eq!(s.allocation().idle_nodes(), 2);
        assert_eq!(s.outstanding_slots(), 0);
    }

    /// Service priority extends to reservations: a service parking while a task gang
    /// drains cancels the drain, takes the capacity first, and the gang re-opens its
    /// reservation afterwards.
    #[test]
    fn parking_service_cancels_task_drain_and_places_first() {
        let batch = BatchSystem::new(PlatformId::Local.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(2)).unwrap();
        let s = Arc::new(
            Scheduler::with_lookahead(alloc, 2)
                .with_max_overtakes(None)
                .with_gang_drain_after(Some(Duration::from_millis(20))),
        );
        let pin = s
            .allocate(&cores(1), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s_gang = Arc::clone(&s);
        let gang_waiter = thread::spawn(move || {
            s_gang.allocate_with_stats(
                &cores(8).with_nodes(2),
                Priority::Task,
                Duration::from_secs(30),
            )
        });
        // Wait for the age trigger to pin the idle node.
        wait_until(&s, "task gang draining", |s| {
            s.allocation().reserved_nodes() == 1
        });
        // A whole-node service arrives: it must not be blocked by the pinned node.
        let svc = s
            .allocate(&cores(8), Priority::Service, Duration::from_secs(5))
            .expect("service must reclaim the reserved node");
        assert_eq!(
            s.allocation().reserved_nodes(),
            0,
            "task drain cancelled while the service was served"
        );
        // Release the service and the pin: the gang completes — through a re-opened
        // reservation if its head re-drained before the capacity freed, or directly
        // off the idle bucket if not. Either way the earlier *cancelled* draining
        // interval must never be reported as drain_secs (the metric covers only an
        // interval ending in a reserved placement).
        s.release(&svc).unwrap();
        s.release(&pin).unwrap();
        let (gang, _stats) = gang_waiter.join().unwrap().unwrap();
        assert_eq!(gang.num_nodes(), 2);
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().idle_nodes(), 2);
    }

    /// The sharded allocator's "pin before any waiter wakes" guarantee, exercised
    /// under concurrency (and backed by a `debug_assert` in `release_slot`): when a
    /// draining gang and a parked narrow waiter race for a node freed on the same
    /// shard, the drain's pin must win — the release pins the node inside its own
    /// critical section, before the scheduler can wake anyone. Seeded repeats shake
    /// the thread interleaving.
    #[test]
    fn drain_pin_wins_over_concurrent_same_shard_waiter_wakeup() {
        for seed in 0..4u64 {
            let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), seed);
            let alloc = batch
                .submit(AllocationRequest::nodes(4).with_allocator_shards(2))
                .unwrap();
            assert_eq!(alloc.num_shards(), 2);
            let s = Arc::new(
                Scheduler::with_lookahead(Arc::clone(&alloc), 2)
                    .with_max_overtakes(None)
                    .with_gang_drain_after(Some(Duration::from_millis(10))),
            );
            // Every node busy: the gang must park, age, and open its reservation.
            let holds: Vec<_> = (0..4)
                .map(|_| {
                    s.allocate(&cores(64), Priority::Task, Duration::from_secs(1))
                        .unwrap()
                })
                .collect();
            let s_gang = Arc::clone(&s);
            let gang_waiter = thread::spawn(move || {
                s_gang.allocate(
                    &cores(64).with_nodes(4),
                    Priority::Task,
                    Duration::from_secs(30),
                )
            });
            wait_until(&s, "gang draining", |s| {
                s.allocation().drain_status().is_some()
            });
            // A narrow task parks behind the draining gang, inside the window.
            let s_narrow = Arc::clone(&s);
            let narrow_waiter = thread::spawn(move || {
                s_narrow.allocate(&cores(1), Priority::Task, Duration::from_millis(250))
            });
            wait_until(&s, "narrow task parked", |s| s.waiting_tasks() == 2);
            // Free one node: its release wakes the narrow waiter, but the pin ran
            // first — the waiter must find nothing and eventually time out.
            s.release(&holds[0]).unwrap();
            wait_until(&s, "freed node pinned to the drain", |s| {
                s.allocation().reserved_nodes() == 1
            });
            let narrow = narrow_waiter.join().unwrap();
            assert!(
                matches!(narrow, Err(RuntimeError::WaitTimeout { .. })),
                "seed {seed}: the drain's pin must win over the woken waiter: {narrow:?}"
            );
            // Free the rest: the gang completes through its reservation.
            for hold in &holds[1..] {
                s.release(hold).unwrap();
            }
            let gang = gang_waiter.join().unwrap().unwrap();
            assert_eq!(gang.num_nodes(), 4);
            s.release(&gang).unwrap();
            assert_eq!(s.outstanding_slots(), 0);
            assert_eq!(alloc.idle_nodes(), 4);
            assert_eq!(alloc.reserved_nodes(), 0);
        }
    }

    /// Placement stats surface the allocator's shard-probe count: 1-ish for
    /// single-node placements (two-choice probe), the spanned shard count for a
    /// cross-shard gang.
    #[test]
    fn placement_stats_report_shard_probes() {
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch
            .submit(AllocationRequest::nodes(4).with_allocator_shards(2))
            .unwrap();
        let s = Scheduler::new(alloc);
        let (slot, stats) = s
            .allocate_with_stats(&cores(4), Priority::Task, Duration::from_secs(1))
            .unwrap();
        assert!((1..=2).contains(&stats.shard_probes), "{stats:?}");
        let (gang, gang_stats) = s
            .allocate_with_stats(
                &cores(32).with_nodes(4),
                Priority::Task,
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(gang_stats.shard_probes, 2, "gang locks every shard");
        s.release(&slot).unwrap();
        s.release(&gang).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn concurrent_allocate_release_conserves_resources() {
        let s = Arc::new(scheduler(PlatformId::Delta, 2)); // 128 cores, 8 gpus
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let slot = s
                        .allocate(&cores(4), Priority::Task, Duration::from_secs(10))
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 128);
        assert_eq!(s.allocation().free_gpus(), 8);
        assert_eq!(s.outstanding_slots(), 0);
        assert!(format!("{:?}", s).contains("free_cores"));
    }

    #[test]
    fn oversubscribed_churn_drains_without_starvation() {
        // More threads than capacity: every waiter must eventually be served (FIFO
        // guarantees progress for each parked request, not just the lucky ones).
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 8 cores
        let mut handles = Vec::new();
        for _ in 0..16 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let slot = s
                        .allocate(&cores(3), Priority::Task, Duration::from_secs(30))
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 8);
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.waiting_tasks(), 0);
    }

    #[test]
    fn oversubscribed_gang_and_single_churn_drains_with_lookahead() {
        // Mixed widths under a lookahead window: 2-node gangs and single-node tasks
        // hammer a 2-node allocation; everything must drain with resources conserved.
        let s = Arc::new(scheduler_with_lookahead(PlatformId::Local, 2, 3));
        let mut handles = Vec::new();
        for i in 0..8 {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                let req = if i % 2 == 0 {
                    cores(2).with_nodes(2)
                } else {
                    cores(3)
                };
                for _ in 0..20 {
                    let slot = s
                        .allocate(&req, Priority::Task, Duration::from_secs(30))
                        .unwrap();
                    s.release(&slot).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.allocation().free_cores(), 16);
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.waiting_tasks(), 0);
        assert_eq!(s.allocation().idle_nodes(), 2);
    }

    #[test]
    fn release_of_evicted_slot_reports_node_failed_and_retires_it() {
        let s = scheduler(PlatformId::Local, 2);
        let slot = s
            .allocate(&cores(4), Priority::Task, Duration::from_secs(1))
            .unwrap();
        assert!(!s.slot_lost(&slot));
        let victims = s.allocation().fail_node(slot.node_index()).unwrap();
        assert_eq!(victims, vec![slot.id]);
        assert!(s.slot_lost(&slot));
        let err = s.release(&slot).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Resource(ResourceError::NodeFailed(_))
        ));
        assert_eq!(
            s.outstanding_slots(),
            0,
            "an evicted slot still retires from the outstanding count"
        );
        // The eviction was reported once; a second release is an ordinary error.
        let err = s.release(&slot).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Resource(ResourceError::UnknownSlot(_))
        ));
    }

    #[test]
    fn requeued_victim_parks_at_the_front_of_its_class() {
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // 8 cores, strict FIFO
        let hold = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s1 = Arc::clone(&s);
        let back =
            thread::spawn(move || s1.allocate(&cores(8), Priority::Task, Duration::from_secs(30)));
        wait_until(&s, "ordinary waiter parked", |s| s.waiting_tasks() == 1);
        let s2 = Arc::clone(&s);
        let front =
            thread::spawn(move || s2.requeue(&cores(8), Priority::Task, Duration::from_secs(30)));
        wait_until(&s, "requeued waiter parked", |s| s.waiting_tasks() == 2);
        // One whole node frees: the requeued waiter at the front must take it while
        // the earlier ordinary arrival stays parked behind it.
        s.release(&hold).unwrap();
        let front_slot = front.join().unwrap().unwrap();
        assert_eq!(
            s.waiting_tasks(),
            1,
            "the ordinary waiter is still parked behind the served requeue"
        );
        s.release(&front_slot).unwrap();
        let back_slot = back.join().unwrap().unwrap();
        s.release(&back_slot).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn expand_plus_notify_capacity_unblocks_a_parked_waiter() {
        let s = Arc::new(scheduler(PlatformId::Local, 1)); // one 8-core node
        let hold = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let s1 = Arc::clone(&s);
        let waiter =
            thread::spawn(move || s1.allocate(&cores(8), Priority::Task, Duration::from_secs(30)));
        wait_until(&s, "waiter parked", |s| s.waiting_tasks() == 1);
        // Growth releases no slot, so the pilot layer must pass the wakeup on.
        s.allocation().expand(1).unwrap();
        s.notify_capacity();
        let slot = waiter.join().unwrap().unwrap();
        assert_eq!(slot.num_cores(), 8);
        s.release(&slot).unwrap();
        s.release(&hold).unwrap();
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().idle_nodes(), 2);
    }

    /// Satellite acceptance: a gang that loses a member to a node failure requeues
    /// at the front and replaces the member within its overtake budget, even against
    /// a stream of narrow competitors (seeded repeats shake the interleaving).
    #[test]
    fn failed_gang_member_requeues_and_replaces_within_overtake_budget() {
        const MAX_OVERTAKES: u32 = 3;
        for seed in 0..3u64 {
            let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), seed);
            let alloc = batch.submit(AllocationRequest::nodes(5)).unwrap();
            let cores_per_node = alloc.node_spec().cores;
            let s = Arc::new(
                Scheduler::with_lookahead(Arc::clone(&alloc), 2)
                    .with_max_overtakes(Some(MAX_OVERTAKES)),
            );
            let narrow = cores(cores_per_node);
            let gang = s
                .allocate(
                    &cores(cores_per_node).with_nodes(4),
                    Priority::Task,
                    Duration::from_secs(1),
                )
                .unwrap();
            let victim_node = gang.node_index();
            // The spare (non-member) node carries a narrow tenant, so the requeued
            // gang cannot place directly and must age into a drain.
            let mut hold = Some(
                s.allocate(&narrow, Priority::Task, Duration::from_secs(1))
                    .unwrap(),
            );

            let victims = alloc.fail_node(victim_node).unwrap();
            assert_eq!(victims, vec![gang.id], "seed {seed}");
            assert!(s.slot_lost(&gang));
            assert!(matches!(
                s.release(&gang),
                Err(RuntimeError::Resource(ResourceError::NodeFailed(_)))
            ));

            let s_gang = Arc::clone(&s);
            let gang_req = cores(cores_per_node).with_nodes(4);
            let gang_waiter = thread::spawn(move || {
                s_gang.requeue_with_stats(&gang_req, Priority::Task, Duration::from_secs(30))
            });
            wait_until(&s, "requeued gang parked at the head", |s| {
                s.waiting_tasks() == 1
            });

            // Narrow churn overtakes the requeued gang until its budget is spent,
            // then the drain pins freed nodes and the stream hits the wall.
            let mut overtakes = 0u32;
            for round in 0..20 {
                if overtakes > MAX_OVERTAKES {
                    wait_until(&s, "requeued gang draining", |s| {
                        s.allocation().drain_status().is_some()
                    });
                }
                match s.allocate(&narrow, Priority::Task, Duration::from_millis(300)) {
                    Ok(next) => {
                        overtakes += 1;
                        assert!(
                            overtakes <= MAX_OVERTAKES + 2,
                            "seed {seed}: churn still placing after {overtakes} overtakes"
                        );
                        s.release(&hold.take().unwrap()).unwrap();
                        hold = Some(next);
                    }
                    Err(e) => {
                        assert!(matches!(e, RuntimeError::WaitTimeout { .. }), "{e:?}");
                        assert!(
                            round as u32 >= MAX_OVERTAKES,
                            "seed {seed}: churn starved before the budget was spent"
                        );
                        s.release(&hold.take().unwrap()).unwrap();
                        break;
                    }
                }
            }
            assert!(hold.is_none(), "seed {seed}: churn must hit the drain wall");

            let (replacement, stats) = gang_waiter.join().unwrap().unwrap();
            assert_eq!(replacement.num_nodes(), 4);
            assert!(
                replacement.node_indices().all(|n| n != victim_node),
                "seed {seed}: the replacement gang must avoid the failed node"
            );
            assert!(
                stats.overtakes <= MAX_OVERTAKES + 2,
                "seed {seed}: requeue must place within its overtake budget: {stats:?}"
            );
            s.release(&replacement).unwrap();
            assert_eq!(s.outstanding_slots(), 0);
            assert_eq!(alloc.idle_nodes(), 4);
            assert_eq!(alloc.failed_nodes(), 1);
            assert_eq!(alloc.reserved_nodes(), 0);
        }
    }

    #[test]
    fn queue_shards_knob_pins_and_derives() {
        let s = scheduler(PlatformId::Local, 1);
        assert_eq!(s.queue_shards(), 1, "small allocations derive one shard");
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 3);
        let alloc = batch.submit(AllocationRequest::nodes(4)).unwrap();
        let pinned = Scheduler::new(Arc::clone(&alloc)).with_queue_shards(Some(4));
        assert_eq!(pinned.queue_shards(), 4);
        assert_eq!(pinned.shard_wakeup_counts(), vec![0; 4]);
        let clamped = Scheduler::new(alloc).with_queue_shards(Some(0));
        assert_eq!(clamped.queue_shards(), 1, "clamped to at least 1");
        assert!(format!("{clamped:?}").contains("queue_shards"));
    }

    #[test]
    fn submit_batch_fans_out_across_shards_and_every_ticket_places() {
        let s = Arc::new(scheduler(PlatformId::Local, 2).with_queue_shards(Some(2)));
        // Fill both nodes so the whole batch parks instead of fast-pathing.
        let hold_a = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let hold_b = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let admission = s.submit_batch(&[(cores(4), Priority::Task); 4]).unwrap();
        assert_eq!(admission.tickets.len(), 4);
        assert_eq!(
            admission.shard_batches,
            vec![2, 2],
            "the rotor stripes the batch evenly across both shards"
        );
        assert_eq!(s.waiting_tasks(), 4);
        let threads: Vec<_> = admission
            .tickets
            .into_iter()
            .map(|ticket| {
                let s = Arc::clone(&s);
                thread::spawn(move || s.allocate_admitted(ticket, Duration::from_secs(10)))
            })
            .collect();
        s.release(&hold_a).unwrap();
        s.release(&hold_b).unwrap();
        let slots: Vec<Slot> = threads
            .into_iter()
            .map(|t| t.join().unwrap().expect("admitted ticket places"))
            .collect();
        assert_eq!(s.outstanding_slots(), 4);
        for slot in &slots {
            s.release(slot).unwrap();
        }
        assert_eq!(s.waiting_tasks(), 0);
        assert_eq!(s.outstanding_slots(), 0);
        assert_eq!(s.allocation().free_cores(), 16);
        assert!(
            s.shard_wakeup_counts().iter().sum::<u64>() > 0,
            "releases must have issued targeted wakeups"
        );
    }

    #[test]
    fn batched_admission_preserves_fifo_order_at_one_shard() {
        let s = Arc::new(scheduler(PlatformId::Local, 1).with_queue_shards(Some(1)));
        let hold = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let admission = s.submit_batch(&[(cores(8), Priority::Task); 3]).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let threads: Vec<_> = admission
            .tickets
            .into_iter()
            .enumerate()
            .map(|(i, ticket)| {
                let s = Arc::clone(&s);
                let order = Arc::clone(&order);
                thread::spawn(move || {
                    let slot = s
                        .allocate_admitted(ticket, Duration::from_secs(10))
                        .unwrap();
                    order.lock().push(i);
                    s.release(&slot).unwrap();
                })
            })
            .collect();
        s.release(&hold).unwrap();
        for t in threads {
            t.join().unwrap();
        }
        // Whole-node requests at lookahead 1: only the queue head can ever place,
        // so the placement order is the admission order no matter when each
        // consumer thread reached its allocate_admitted call.
        assert_eq!(*order.lock(), vec![0, 1, 2]);
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn cancelled_ticket_unblocks_the_fifo_behind_it() {
        let s = Arc::new(scheduler(PlatformId::Local, 1).with_queue_shards(Some(1)));
        let hold = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        let mut admission = s.submit_batch(&[(cores(8), Priority::Task); 2]).unwrap();
        let second = admission.tickets.pop().unwrap();
        let first = admission.tickets.pop().unwrap();
        // Abandon the head ticket: the one behind it must still place.
        s.cancel_admitted(first);
        assert_eq!(s.waiting_tasks(), 1);
        let s2 = Arc::clone(&s);
        let consumer = thread::spawn(move || s2.allocate_admitted(second, Duration::from_secs(10)));
        s.release(&hold).unwrap();
        let slot = consumer.join().unwrap().unwrap();
        s.release(&slot).unwrap();
        assert_eq!(s.waiting_tasks(), 0);
        assert_eq!(s.outstanding_slots(), 0);
    }

    #[test]
    fn batched_service_preempts_earlier_batched_tasks_across_shards() {
        let s = Arc::new(scheduler(PlatformId::Local, 1).with_queue_shards(Some(4)));
        let hold = s
            .allocate(&cores(8), Priority::Task, Duration::from_secs(1))
            .unwrap();
        // Tasks admitted *before* the service in the same batch: the service must
        // still place first — its priority gates every task shard.
        let admission = s
            .submit_batch(&[
                (cores(8), Priority::Task),
                (cores(8), Priority::Task),
                (cores(8), Priority::Service),
            ])
            .unwrap();
        assert_eq!(s.waiting_services(), 1);
        assert_eq!(s.waiting_tasks(), 2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let threads: Vec<_> = admission
            .tickets
            .into_iter()
            .map(|ticket| {
                let s = Arc::clone(&s);
                let order = Arc::clone(&order);
                let priority = ticket.priority();
                thread::spawn(move || {
                    let slot = s
                        .allocate_admitted(ticket, Duration::from_secs(10))
                        .unwrap();
                    order.lock().push(priority);
                    s.release(&slot).unwrap();
                })
            })
            .collect();
        // Let all three consumers park before opening capacity.
        wait_until(&s, "all consumers parked", |s| {
            s.waiting_services() == 1 && s.waiting_tasks() == 2
        });
        s.release(&hold).unwrap();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(order.lock()[0], Priority::Service);
        assert_eq!(s.outstanding_slots(), 0);
    }
}
