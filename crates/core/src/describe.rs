//! Descriptions: what the user submits through the unified API.
//!
//! The paper's execution model starts with the client submitting `TaskDescription`s and
//! `ServiceDescription`s through one API (Fig. 2, flow ①). Descriptions are pure data;
//! the runtime turns them into stateful records at submission time.

use serde::{Deserialize, Serialize};

use hpcml_platform::{PlatformId, ResourceRequest};

// Re-exported so description-level callers (the workflow DSL in particular) can name
// the packing policy without depending on `hpcml_platform` directly.
pub use hpcml_platform::GangPacking;
use hpcml_serving::{ModelSpec, ServingConfig};
use hpcml_sim::dist::Dist;

/// A data staging directive: move a named dataset into or out of the task sandbox.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataDirective {
    /// Dataset name (for bookkeeping and metrics).
    pub name: String,
    /// Dataset size in MiB.
    pub size_mib: f64,
    /// True if the source/destination is on a remote platform (e.g. transfered with
    /// Globus, like the Cell Painting imagery), false for platform-local staging.
    pub remote: bool,
}

impl DataDirective {
    /// Local staging directive.
    pub fn local(name: impl Into<String>, size_mib: f64) -> Self {
        DataDirective {
            name: name.into(),
            size_mib,
            remote: false,
        }
    }

    /// Remote (wide-area) staging directive.
    pub fn remote(name: impl Into<String>, size_mib: f64) -> Self {
        DataDirective {
            name: name.into(),
            size_mib,
            remote: true,
        }
    }
}

/// How an inference client selects the services it sends requests to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceSelector {
    /// Explicit list of service names.
    Named(Vec<String>),
    /// All services hosting the given model.
    ByModel(String),
    /// Any registered service.
    Any,
}

/// What a task does when it executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Does nothing (placeholder / dependency barrier).
    Noop,
    /// A self-contained compute kernel of stochastic duration (CPU or GPU work such as
    /// data preprocessing, enrichment analysis, or a training step).
    Compute {
        /// Duration distribution, seconds.
        duration_secs: Dist,
    },
    /// A client that sends inference requests to one or more model services
    /// (round-robin), recording response/inference time metrics.
    InferenceClient {
        /// Which services to send to.
        selector: ServiceSelector,
        /// How many requests to send.
        requests: u32,
        /// Approximate prompt length in words.
        prompt_words: u32,
        /// Generation budget per request.
        max_tokens: u32,
        /// Think time between consecutive requests, seconds.
        think_time_secs: Dist,
    },
}

impl TaskKind {
    /// Convenience constructor for an inference client targeting services by name.
    pub fn inference_client(service: impl Into<String>, requests: u32) -> Self {
        TaskKind::InferenceClient {
            selector: ServiceSelector::Named(vec![service.into()]),
            requests,
            prompt_words: 48,
            max_tokens: 128,
            think_time_secs: Dist::constant(0.0),
        }
    }

    /// Convenience constructor for an inference client targeting all services of a model.
    pub fn inference_client_for_model(model: impl Into<String>, requests: u32) -> Self {
        TaskKind::InferenceClient {
            selector: ServiceSelector::ByModel(model.into()),
            requests,
            prompt_words: 48,
            max_tokens: 128,
            think_time_secs: Dist::constant(0.0),
        }
    }

    /// Convenience constructor for a fixed-duration compute task.
    pub fn compute_secs(secs: f64) -> Self {
        TaskKind::Compute {
            duration_secs: Dist::constant(secs),
        }
    }
}

/// Description of a compute task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDescription {
    /// User-facing task name.
    pub name: String,
    /// What the task does.
    pub kind: TaskKind,
    /// Resources requested. Cores/GPUs/memory apply per member node; `nodes > 1`
    /// declares a multi-node MPI task placed as a gang of idle nodes.
    pub resources: ResourceRequest,
    /// Datasets staged in before execution.
    pub stage_in: Vec<DataDirective>,
    /// Datasets staged out after execution.
    pub stage_out: Vec<DataDirective>,
    /// Services that must be `Ready` before this task may start executing.
    pub after_services: Vec<String>,
    /// Free-form tags (pipeline name, stage name, ...).
    pub tags: Vec<(String, String)>,
    /// How many times the task may be re-run after losing its slot to a node
    /// failure (exponential backoff on the session clock between attempts). 0 (the
    /// default) fails the task on the first eviction.
    pub max_retries: u32,
}

impl TaskDescription {
    /// Create a task description (defaults: NOOP kind, 1 core, no staging).
    pub fn new(name: impl Into<String>) -> Self {
        TaskDescription {
            name: name.into(),
            kind: TaskKind::Noop,
            resources: ResourceRequest::default(),
            stage_in: Vec::new(),
            stage_out: Vec::new(),
            after_services: Vec::new(),
            tags: Vec::new(),
            max_retries: 0,
        }
    }

    /// Set the task kind.
    pub fn kind(mut self, kind: TaskKind) -> Self {
        self.kind = kind;
        self
    }

    /// Allow up to `n` retries after a node failure evicts the task's slot
    /// mid-run. Each retry requeues at the front of the task's wait class with
    /// exponential backoff on the session clock; the task only reaches
    /// `TaskState::Failed` once the budget is exhausted.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Request CPU cores.
    pub fn cores(mut self, cores: u32) -> Self {
        self.resources.cores = cores.max(1);
        self
    }

    /// Request GPUs.
    pub fn gpus(mut self, gpus: u32) -> Self {
        self.resources.gpus = gpus;
        if self.resources.cores == 0 {
            self.resources.cores = 1;
        }
        self
    }

    /// Request memory (GiB).
    pub fn mem_gib(mut self, mem: f64) -> Self {
        self.resources.mem_gib = mem;
        self
    }

    /// Declare a multi-node MPI task spanning `nodes` distinct nodes (clamped to
    /// ≥ 1). The task's cores/GPUs/memory are reserved on *each* member node
    /// (ranks-per-node semantics) and the gang is placed atomically — across
    /// partially free nodes under the default [`GangPacking::Partial`] policy, or on
    /// fully idle nodes only under [`GangPacking::Whole`] (see
    /// [`TaskDescription::gang_packing`]).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.resources.nodes = nodes.max(1);
        self
    }

    /// Pin this task's gang packing policy, overriding the session default
    /// (`SessionBuilder::gang_packing`, itself [`GangPacking::Partial`] unless
    /// configured): `Partial` best-fits gang members across partially free nodes,
    /// `Whole` claims only fully idle nodes. Meaningful for multi-node tasks; a
    /// single-node placement ignores it.
    pub fn gang_packing(mut self, packing: GangPacking) -> Self {
        self.resources.packing = Some(packing);
        self
    }

    /// Add an input staging directive.
    pub fn stage_in(mut self, d: DataDirective) -> Self {
        self.stage_in.push(d);
        self
    }

    /// Add an output staging directive.
    pub fn stage_out(mut self, d: DataDirective) -> Self {
        self.stage_out.push(d);
        self
    }

    /// Require a service to be ready before this task executes.
    pub fn after_service(mut self, service: impl Into<String>) -> Self {
        self.after_services.push(service.into());
        self
    }

    /// Attach a tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.push((key.into(), value.into()));
        self
    }
}

/// Where a service instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServicePlacement {
    /// On the session's local pilot (resources are carved from the pilot allocation and
    /// the service is bootstrapped — launch/init/publish — at submission).
    LocalPilot,
    /// On a remote platform that persistently hosts models (no bootstrap measured, as
    /// in the paper's remote scenario).
    Remote(PlatformId),
}

/// Description of a service instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDescription {
    /// User-facing service name; also the endpoint name clients look up.
    pub name: String,
    /// The model this service hosts.
    pub model: ModelSpec,
    /// Resources requested (local placement only).
    pub resources: ResourceRequest,
    /// Placement: local pilot or remote platform.
    pub placement: ServicePlacement,
    /// Seconds to wait for readiness before giving up.
    pub startup_timeout_secs: f64,
    /// Serving-plane configuration: replica count, continuous-batching thresholds and
    /// admission control. The default (1 replica, batch size 1) is the legacy
    /// one-request-at-a-time service.
    #[serde(default)]
    pub serving: ServingConfig,
    /// Free-form tags.
    pub tags: Vec<(String, String)>,
}

impl ServiceDescription {
    /// Create a service description (defaults: NOOP model, 1 core / 0 GPU, local).
    pub fn new(name: impl Into<String>) -> Self {
        ServiceDescription {
            name: name.into(),
            model: ModelSpec::noop(),
            resources: ResourceRequest::default(),
            placement: ServicePlacement::LocalPilot,
            startup_timeout_secs: 600.0,
            serving: ServingConfig::default(),
            tags: Vec::new(),
        }
    }

    /// Run `n` model replicas behind the endpoint. The resource request widens to an
    /// `n`-node gang so each replica gets its own node share; requests route to the
    /// replica with the fewest outstanding requests.
    pub fn replicas(mut self, n: usize) -> Self {
        let n = n.max(1);
        self.serving.replicas = n;
        self.resources.nodes = self.resources.nodes.max(n);
        self
    }

    /// Enable continuous micro-batching up to `n` requests per backend dispatch.
    pub fn max_batch_size(mut self, n: usize) -> Self {
        self.serving.max_batch_size = n.max(1);
        self
    }

    /// Virtual seconds a request may wait for its batch to fill before a partial batch
    /// dispatches anyway.
    pub fn batch_latency_budget_secs(mut self, secs: f64) -> Self {
        self.serving.batch_latency_budget_secs = secs.max(0.0);
        self
    }

    /// Replace the whole serving configuration. Widens the resource request to a gang
    /// when the config asks for more replicas than nodes.
    pub fn serving(mut self, config: ServingConfig) -> Self {
        self.resources.nodes = self.resources.nodes.max(config.replicas.max(1));
        self.serving = config;
        self
    }

    /// Set the hosted model.
    pub fn model(mut self, model: ModelSpec) -> Self {
        self.model = model;
        self
    }

    /// Request GPUs (and at least one core).
    pub fn gpus(mut self, gpus: u32) -> Self {
        self.resources.gpus = gpus;
        if self.resources.cores == 0 {
            self.resources.cores = 1;
        }
        self
    }

    /// Request CPU cores.
    pub fn cores(mut self, cores: u32) -> Self {
        self.resources.cores = cores.max(1);
        self
    }

    /// Place the service on a remote platform.
    pub fn remote(mut self, platform: PlatformId) -> Self {
        self.placement = ServicePlacement::Remote(platform);
        self
    }

    /// Set the startup timeout.
    pub fn startup_timeout_secs(mut self, secs: f64) -> Self {
        self.startup_timeout_secs = secs;
        self
    }

    /// Attach a tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.push((key.into(), value.into()));
        self
    }

    /// The endpoint name this service registers under.
    pub fn endpoint_name(&self) -> String {
        format!("service.{}", self.name)
    }
}

/// Description of a pilot (resource acquisition request).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PilotDescription {
    /// Target platform.
    pub platform: PlatformId,
    /// Number of whole nodes.
    pub nodes: usize,
    /// Walltime in seconds.
    pub runtime_secs: f64,
    /// Whether to model batch-queue waiting time.
    pub model_queue_wait: bool,
    /// Allocator shard count for this pilot's allocation (`None` inherits the
    /// session default, which itself derives from the host parallelism and the
    /// node count; `Some(1)` pins the single-lock allocator).
    pub allocator_shards: Option<usize>,
}

impl PilotDescription {
    /// Create a pilot description with 1 node and 1 h of walltime.
    pub fn new(platform: PlatformId) -> Self {
        PilotDescription {
            platform,
            nodes: 1,
            runtime_secs: 3600.0,
            model_queue_wait: false,
            allocator_shards: None,
        }
    }

    /// Pin the allocator shard count for this pilot's allocation (overrides the
    /// session-level `SessionBuilder::allocator_shards` default; clamped to
    /// `1..=nodes` at resolution time).
    pub fn allocator_shards(mut self, shards: usize) -> Self {
        self.allocator_shards = Some(shards);
        self
    }

    /// Set the node count.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Set the walltime.
    pub fn runtime_secs(mut self, secs: f64) -> Self {
        self.runtime_secs = secs;
        self
    }

    /// Enable queue-wait modelling.
    pub fn with_queue_wait(mut self, enable: bool) -> Self {
        self.model_queue_wait = enable;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_description_builder() {
        let t = TaskDescription::new("preprocess")
            .kind(TaskKind::compute_secs(12.0))
            .cores(4)
            .mem_gib(8.0)
            .stage_in(DataDirective::remote("cell-paint-shard", 1600.0))
            .stage_out(DataDirective::local("features", 50.0))
            .after_service("llm-0")
            .tag("pipeline", "cell-painting");
        assert_eq!(t.name, "preprocess");
        assert_eq!(t.resources.cores, 4);
        assert_eq!(t.resources.mem_gib, 8.0);
        assert_eq!(t.stage_in.len(), 1);
        assert!(t.stage_in[0].remote);
        assert_eq!(t.stage_out.len(), 1);
        assert_eq!(t.after_services, vec!["llm-0".to_string()]);
        assert_eq!(t.tags.len(), 1);
        assert!(matches!(t.kind, TaskKind::Compute { .. }));
        assert_eq!(t.max_retries, 0, "retries are opt-in");
        assert_eq!(t.max_retries(3).max_retries, 3);
    }

    #[test]
    fn task_gpu_request_keeps_a_core() {
        let t = TaskDescription::new("train").gpus(2);
        assert_eq!(t.resources.gpus, 2);
        assert!(t.resources.cores >= 1);
    }

    #[test]
    fn task_gang_packing_override() {
        let inherit = TaskDescription::new("mpi").cores(8).nodes(4);
        assert_eq!(
            inherit.resources.packing, None,
            "unset policy inherits the session default"
        );
        let pinned = TaskDescription::new("mpi-whole")
            .cores(8)
            .nodes(4)
            .gang_packing(GangPacking::Whole);
        assert_eq!(pinned.resources.packing, Some(GangPacking::Whole));
    }

    #[test]
    fn inference_client_constructors() {
        let k = TaskKind::inference_client("llm-0", 64);
        match k {
            TaskKind::InferenceClient {
                selector, requests, ..
            } => {
                assert_eq!(selector, ServiceSelector::Named(vec!["llm-0".to_string()]));
                assert_eq!(requests, 64);
            }
            _ => panic!("wrong kind"),
        }
        let k = TaskKind::inference_client_for_model("llama-8b", 8);
        assert!(matches!(
            k,
            TaskKind::InferenceClient {
                selector: ServiceSelector::ByModel(_),
                ..
            }
        ));
    }

    #[test]
    fn service_description_builder_and_endpoint_name() {
        let s = ServiceDescription::new("llm-0")
            .model(ModelSpec::sim_llama_8b())
            .gpus(1)
            .startup_timeout_secs(120.0)
            .tag("stage", "training");
        assert_eq!(s.endpoint_name(), "service.llm-0");
        assert_eq!(s.resources.gpus, 1);
        assert_eq!(s.placement, ServicePlacement::LocalPilot);
        assert_eq!(s.startup_timeout_secs, 120.0);
        assert_eq!(s.model.name, "llama-8b");
    }

    #[test]
    fn remote_service_placement() {
        let s = ServiceDescription::new("remote-llm").remote(PlatformId::R3Cloud);
        assert_eq!(s.placement, ServicePlacement::Remote(PlatformId::R3Cloud));
    }

    #[test]
    fn pilot_description_builder() {
        let p = PilotDescription::new(PlatformId::Delta)
            .nodes(4)
            .runtime_secs(7200.0)
            .with_queue_wait(true);
        assert_eq!(p.platform, PlatformId::Delta);
        assert_eq!(p.nodes, 4);
        assert_eq!(p.runtime_secs, 7200.0);
        assert!(p.model_queue_wait);
    }

    #[test]
    fn data_directive_constructors() {
        let l = DataDirective::local("csv", 2.0);
        assert!(!l.remote);
        let r = DataDirective::remote("images", 1_600_000.0);
        assert!(r.remote);
        assert_eq!(r.name, "images");
    }
}
