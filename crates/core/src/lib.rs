//! # hpcml-runtime — a pilot runtime with service-oriented extensions
//!
//! This crate is the reproduction of the paper's primary contribution: a runtime that
//! extends a pilot-job system (RADICAL-Pilot) with **service tasks**, so that ML
//! capabilities (model serving and inference) become first-class, schedulable,
//! monitorable entities next to ordinary compute tasks.
//!
//! The module layout mirrors the architecture of the paper's Fig. 2:
//!
//! * [`describe`] — the unified submission API's descriptions: [`describe::TaskDescription`],
//!   [`describe::ServiceDescription`], [`describe::PilotDescription`] (flow ①);
//! * [`states`] — the entity state models (task, service, pilot) and their legal
//!   transitions;
//! * [`records`] — the runtime-internal records tracking each entity's state,
//!   timestamps, placement and outcome, with blocking waiters;
//! * [`pilot`] — the pilot manager: acquiring resources from the platform's batch
//!   system and exposing them as an allocation;
//! * [`scheduler`] — placement of tasks and services onto allocation slots, with
//!   service-priority and blocking back-pressure (flow ②);
//! * [`executor`] — launching service instances (launch → init → publish → ready) and
//!   executing tasks (stage-in → run → stage-out), spending modelled durations on the
//!   shared virtual clock (flow ③–⑤);
//! * [`service_manager`] — service lifecycle: readiness, liveness probing, controlled
//!   shutdown, endpoint publication (the new component introduced by the paper);
//! * [`task_manager`] — task lifecycle and completion tracking;
//! * [`data`] — the data manager and input/output stagers;
//! * [`metrics`] — Bootstrap/Response/Inference time recorders with per-component
//!   breakdowns (the quantities of the paper's §IV);
//! * [`session`] — the client-facing `Session` tying everything together (flows ① and ⑥).
//!
//! # Example
//!
//! The scheduler used standalone: bind it to a pilot allocation, place a task-priority
//! request, release it. (Applications normally go through [`session::Session`], which
//! owns the scheduler; see the workspace root's quickstart.)
//!
//! ```
//! use std::time::Duration;
//!
//! use hpcml_platform::batch::{AllocationRequest, BatchSystem};
//! use hpcml_platform::{PlatformId, ResourceRequest};
//! use hpcml_runtime::scheduler::{Priority, Scheduler};
//! use hpcml_sim::clock::ClockSpec;
//!
//! let batch = BatchSystem::new(PlatformId::Local.spec(), ClockSpec::Manual.build(), 7);
//! let alloc = batch.submit(AllocationRequest::nodes(2))?;
//! let scheduler = Scheduler::new(alloc);
//!
//! let req = ResourceRequest::cores(2)?;
//! let slot = scheduler.allocate(&req, Priority::Task, Duration::from_secs(1))?;
//! assert_eq!(slot.num_cores(), 2);
//! scheduler.release(&slot)?;
//! assert_eq!(scheduler.outstanding_slots(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod describe;
pub mod error;
pub mod executor;
pub mod metrics;
pub mod pilot;
pub mod records;
pub mod scheduler;
pub mod service_manager;
pub mod session;
pub mod states;
pub mod task_manager;

pub use describe::{
    PilotDescription, ServiceDescription, ServicePlacement, TaskDescription, TaskKind,
};
pub use error::RuntimeError;
pub use metrics::RuntimeMetrics;
pub use session::{Session, SessionBuilder, SessionConfig};
pub use states::{PilotState, ServiceState, TaskState};

/// Commonly used types, re-exported for `use hpcml_runtime::prelude::*`.
pub mod prelude {
    pub use crate::describe::{
        DataDirective, GangPacking, PilotDescription, ServiceDescription, ServicePlacement,
        TaskDescription, TaskKind,
    };
    pub use crate::error::RuntimeError;
    pub use crate::metrics::RuntimeMetrics;
    pub use crate::records::{PilotHandle, ServiceHandle, TaskHandle};
    pub use crate::session::{Session, SessionBuilder, SessionConfig};
    pub use crate::states::{PilotState, ServiceState, TaskState};
    pub use hpcml_sim::fault::{FaultEvent, FaultPlan};
}
