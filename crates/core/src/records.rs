//! Stateful entity records and the public handles wrapping them.
//!
//! A record is the runtime's bookkeeping for one submitted entity: its description, its
//! current state, the virtual timestamp of every state it entered, its placement, and —
//! for failures — the reason. State transitions are validated against the state models
//! in [`crate::states`] and waiters are woken through a condition variable, which is what
//! the public `wait_*` calls of [`TaskHandle`]/[`ServiceHandle`]/[`PilotHandle`] use.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use hpcml_platform::batch::Allocation;
use hpcml_platform::resources::Slot;
use hpcml_platform::PlatformId;
use hpcml_sim::clock::SharedClock;

use crate::describe::{PilotDescription, ServiceDescription, TaskDescription};
use crate::error::RuntimeError;
use crate::pilot::PilotManager;
use crate::scheduler::Scheduler;
use crate::states::{PilotState, ServiceState, TaskState};

/// Minimal interface a state enum must offer to be tracked by a [`StateCell`].
pub trait StateModel: Copy + std::fmt::Debug + PartialEq + Send + 'static {
    /// Whether `self -> next` is legal.
    fn can_go(self, next: Self) -> bool;
    /// Whether `self` is terminal.
    fn terminal(self) -> bool;
}

impl StateModel for TaskState {
    fn can_go(self, next: Self) -> bool {
        self.can_transition_to(next)
    }
    fn terminal(self) -> bool {
        self.is_final()
    }
}

impl StateModel for ServiceState {
    fn can_go(self, next: Self) -> bool {
        self.can_transition_to(next)
    }
    fn terminal(self) -> bool {
        self.is_final()
    }
}

impl StateModel for PilotState {
    fn can_go(self, next: Self) -> bool {
        self.can_transition_to(next)
    }
    fn terminal(self) -> bool {
        self.is_final()
    }
}

struct StateInner<S> {
    current: S,
    /// Virtual time (seconds) at which each state was entered, keyed by `{:?}` name.
    timestamps: BTreeMap<String, f64>,
    error: Option<String>,
}

/// A validated, waitable state holder.
pub struct StateCell<S: StateModel> {
    inner: Mutex<StateInner<S>>,
    cond: Condvar,
    clock: SharedClock,
}

impl<S: StateModel> StateCell<S> {
    /// Create a cell in the given initial state.
    pub fn new(initial: S, clock: SharedClock) -> Self {
        let mut timestamps = BTreeMap::new();
        timestamps.insert(format!("{initial:?}"), clock.now().as_secs_f64());
        StateCell {
            inner: Mutex::new(StateInner {
                current: initial,
                timestamps,
                error: None,
            }),
            cond: Condvar::new(),
            clock,
        }
    }

    /// Current state.
    pub fn current(&self) -> S {
        self.inner.lock().current
    }

    /// Failure reason, if the entity failed.
    pub fn error(&self) -> Option<String> {
        self.inner.lock().error.clone()
    }

    /// Virtual timestamp (seconds) at which `state` was entered, if it was.
    pub fn entered_at(&self, state: S) -> Option<f64> {
        self.inner
            .lock()
            .timestamps
            .get(&format!("{state:?}"))
            .copied()
    }

    /// All recorded `(state name, virtual seconds)` pairs.
    pub fn timestamps(&self) -> BTreeMap<String, f64> {
        self.inner.lock().timestamps.clone()
    }

    /// Attempt a transition; records the entry timestamp and wakes waiters.
    pub fn transition(&self, next: S) -> Result<(), RuntimeError> {
        let mut inner = self.inner.lock();
        if inner.current == next {
            return Ok(());
        }
        if !inner.current.can_go(next) {
            return Err(RuntimeError::InvalidState(format!(
                "illegal transition {:?} -> {:?}",
                inner.current, next
            )));
        }
        inner.current = next;
        inner
            .timestamps
            .insert(format!("{next:?}"), self.clock.now().as_secs_f64());
        self.cond.notify_all();
        Ok(())
    }

    /// Transition to a failure state with a reason (does not validate legality so that
    /// failures can always be recorded).
    pub fn fail(&self, failed_state: S, reason: impl Into<String>) {
        let mut inner = self.inner.lock();
        inner.current = failed_state;
        inner.error = Some(reason.into());
        inner
            .timestamps
            .insert(format!("{failed_state:?}"), self.clock.now().as_secs_f64());
        self.cond.notify_all();
    }

    /// Block until `predicate(state)` holds or the real-time `timeout` elapses.
    pub fn wait_until<F: Fn(S) -> bool>(
        &self,
        predicate: F,
        timeout: Duration,
    ) -> Result<S, RuntimeError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if predicate(inner.current) {
                return Ok(inner.current);
            }
            if inner.current.terminal() {
                // Terminal but not what the caller wanted: report failure.
                let reason = inner
                    .error
                    .clone()
                    .unwrap_or_else(|| format!("entity ended in {:?}", inner.current));
                return Err(RuntimeError::Failed(reason));
            }
            if Instant::now() >= deadline || self.cond.wait_until(&mut inner, deadline).timed_out()
            {
                if predicate(inner.current) {
                    return Ok(inner.current);
                }
                return Err(RuntimeError::WaitTimeout {
                    entity: "entity".to_string(),
                    awaited: "requested state".to_string(),
                });
            }
        }
    }
}

/// Bootstrap time components measured for one local service instance (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BootstrapTimes {
    /// Time to launch the service executable on its target resources.
    pub launch_secs: f64,
    /// Time to load and initialise the model.
    pub init_secs: f64,
    /// Time to publish the service endpoint.
    pub publish_secs: f64,
}

impl BootstrapTimes {
    /// Total bootstrap time.
    pub fn total(&self) -> f64 {
        self.launch_secs + self.init_secs + self.publish_secs
    }
}

/// Internal record of a task.
pub struct TaskRecord {
    /// Runtime-assigned identifier (e.g. `task.000004`).
    pub id: String,
    /// The submitted description.
    pub description: TaskDescription,
    /// Validated state holder.
    pub state: StateCell<TaskState>,
    /// Slot the task runs on, once scheduled.
    pub slot: Mutex<Option<Slot>>,
    /// Platform the task runs on.
    pub platform: PlatformId,
    /// Times the task was re-run after losing its slot to a node failure.
    pub retries: AtomicU32,
}

impl TaskRecord {
    /// Create a record in the `New` state.
    pub fn new(
        id: String,
        description: TaskDescription,
        platform: PlatformId,
        clock: SharedClock,
    ) -> Arc<Self> {
        Arc::new(TaskRecord {
            id,
            description,
            state: StateCell::new(TaskState::New, clock),
            slot: Mutex::new(None),
            platform,
            retries: AtomicU32::new(0),
        })
    }
}

/// Internal record of a service instance.
pub struct ServiceRecord {
    /// Runtime-assigned identifier (e.g. `service.000002`).
    pub id: String,
    /// The submitted description.
    pub description: ServiceDescription,
    /// Validated state holder.
    pub state: StateCell<ServiceState>,
    /// Slot the service runs on (local placement only).
    pub slot: Mutex<Option<Slot>>,
    /// Platform the service runs on.
    pub platform: PlatformId,
    /// Set to ask the serve loop to stop.
    pub stop: Arc<AtomicBool>,
    /// Measured bootstrap components (local placement only).
    pub bootstrap: Mutex<Option<BootstrapTimes>>,
    /// Requests served (snapshot updated when the serve loop exits).
    pub requests_served: Mutex<u64>,
}

impl ServiceRecord {
    /// Create a record in the `New` state.
    pub fn new(
        id: String,
        description: ServiceDescription,
        platform: PlatformId,
        clock: SharedClock,
    ) -> Arc<Self> {
        Arc::new(ServiceRecord {
            id,
            description,
            state: StateCell::new(ServiceState::New, clock),
            slot: Mutex::new(None),
            platform,
            stop: Arc::new(AtomicBool::new(false)),
            bootstrap: Mutex::new(None),
            requests_served: Mutex::new(0),
        })
    }

    /// The endpoint name this service registers under.
    pub fn endpoint_name(&self) -> String {
        self.description.endpoint_name()
    }

    /// Ask the serve loop to stop.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Internal record of a pilot.
pub struct PilotRecord {
    /// Runtime-assigned identifier (e.g. `pilot.000000`).
    pub id: String,
    /// The submitted description.
    pub description: PilotDescription,
    /// Validated state holder.
    pub state: StateCell<PilotState>,
    /// The granted allocation, once active.
    pub allocation: Mutex<Option<Arc<Allocation>>>,
}

impl PilotRecord {
    /// Create a record in the `New` state.
    pub fn new(id: String, description: PilotDescription, clock: SharedClock) -> Arc<Self> {
        Arc::new(PilotRecord {
            id,
            description,
            state: StateCell::new(PilotState::New, clock),
            allocation: Mutex::new(None),
        })
    }
}

/// Public handle on a submitted task.
#[derive(Clone)]
pub struct TaskHandle {
    pub(crate) record: Arc<TaskRecord>,
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("id", &self.record.id)
            .field("state", &self.state())
            .finish()
    }
}

impl TaskHandle {
    /// Runtime-assigned identifier.
    pub fn id(&self) -> &str {
        &self.record.id
    }

    /// Current state.
    pub fn state(&self) -> TaskState {
        self.record.state.current()
    }

    /// Failure reason, if any.
    pub fn error(&self) -> Option<String> {
        self.record.state.error()
    }

    /// Virtual timestamps of every state entered so far.
    pub fn timestamps(&self) -> BTreeMap<String, f64> {
        self.record.state.timestamps()
    }

    /// Times the task was re-run after losing its slot to a node failure.
    pub fn retries(&self) -> u32 {
        self.record.retries.load(Ordering::Relaxed)
    }

    /// Block until the task reaches `Done` (default timeout: 300 s of real time).
    pub fn wait_done(&self) -> Result<TaskState, RuntimeError> {
        self.wait_done_timeout(Duration::from_secs(300))
    }

    /// Block until the task reaches `Done`, with an explicit real-time timeout.
    pub fn wait_done_timeout(&self, timeout: Duration) -> Result<TaskState, RuntimeError> {
        self.record
            .state
            .wait_until(|s| s == TaskState::Done, timeout)
    }

    /// Block until the task reaches any terminal state.
    pub fn wait_final(&self, timeout: Duration) -> Result<TaskState, RuntimeError> {
        match self.record.state.wait_until(|s| s.is_final(), timeout) {
            Ok(s) => Ok(s),
            Err(RuntimeError::Failed(_)) => Ok(self.state()),
            Err(e) => Err(e),
        }
    }
}

/// Public handle on a submitted service.
#[derive(Clone)]
pub struct ServiceHandle {
    pub(crate) record: Arc<ServiceRecord>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("id", &self.record.id)
            .field("name", &self.record.description.name)
            .field("state", &self.state())
            .finish()
    }
}

impl ServiceHandle {
    /// Runtime-assigned identifier.
    pub fn id(&self) -> &str {
        &self.record.id
    }

    /// User-facing service name.
    pub fn name(&self) -> &str {
        &self.record.description.name
    }

    /// Endpoint name the service registers under.
    pub fn endpoint_name(&self) -> String {
        self.record.endpoint_name()
    }

    /// Current state.
    pub fn state(&self) -> ServiceState {
        self.record.state.current()
    }

    /// Failure reason, if any.
    pub fn error(&self) -> Option<String> {
        self.record.state.error()
    }

    /// Measured bootstrap components (local services only; `None` until ready).
    pub fn bootstrap_times(&self) -> Option<BootstrapTimes> {
        *self.record.bootstrap.lock()
    }

    /// Virtual timestamps of every state entered so far.
    pub fn timestamps(&self) -> BTreeMap<String, f64> {
        self.record.state.timestamps()
    }

    /// Block until the service is `Ready` (default timeout: 300 s of real time).
    pub fn wait_ready(&self) -> Result<ServiceState, RuntimeError> {
        self.wait_ready_timeout(Duration::from_secs(300))
    }

    /// Block until the service is `Ready`, with an explicit real-time timeout.
    pub fn wait_ready_timeout(&self, timeout: Duration) -> Result<ServiceState, RuntimeError> {
        self.record
            .state
            .wait_until(|s| s == ServiceState::Ready, timeout)
    }

    /// Block until the service reaches any terminal state.
    pub fn wait_final(&self, timeout: Duration) -> Result<ServiceState, RuntimeError> {
        match self.record.state.wait_until(|s| s.is_final(), timeout) {
            Ok(s) => Ok(s),
            Err(RuntimeError::Failed(_)) => Ok(self.state()),
            Err(e) => Err(e),
        }
    }

    /// Ask the service to stop serving (orderly shutdown).
    pub fn request_stop(&self) {
        self.record.request_stop();
    }
}

/// Public handle on a submitted pilot.
#[derive(Clone)]
pub struct PilotHandle {
    pub(crate) record: Arc<PilotRecord>,
    /// Resize wiring: present on handles issued by a session, absent on handles
    /// constructed directly around a record (which cannot resize).
    pub(crate) manager: Option<Arc<PilotManager>>,
    /// The scheduler to poke after growth (expansion releases no slot, so parked
    /// placements would otherwise never re-probe).
    pub(crate) scheduler: Option<Arc<Scheduler>>,
}

impl std::fmt::Debug for PilotHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PilotHandle")
            .field("id", &self.record.id)
            .field("state", &self.state())
            .finish()
    }
}

impl PilotHandle {
    /// Runtime-assigned identifier.
    pub fn id(&self) -> &str {
        &self.record.id
    }

    /// Current state.
    pub fn state(&self) -> PilotState {
        self.record.state.current()
    }

    /// Number of healthy nodes in the pilot's allocation (0 before it becomes
    /// active; failed nodes do not count).
    pub fn num_nodes(&self) -> usize {
        self.record
            .allocation
            .lock()
            .as_ref()
            .map(|a| a.num_nodes())
            .unwrap_or(0)
    }

    /// Number of failed nodes still attached to the pilot's allocation.
    pub fn failed_nodes(&self) -> usize {
        self.record
            .allocation
            .lock()
            .as_ref()
            .map(|a| a.failed_nodes())
            .unwrap_or(0)
    }

    /// Nodes the platform still charges the pilot for: healthy plus failed (a
    /// failed node stays attached until a shrink sheds it).
    pub fn attached_nodes(&self) -> usize {
        self.record
            .allocation
            .lock()
            .as_ref()
            .map(|a| a.attached_nodes())
            .unwrap_or(0)
    }

    /// Healthy nodes with no occupancy at all (free for whole-node gangs).
    pub fn idle_nodes(&self) -> usize {
        self.record
            .allocation
            .lock()
            .as_ref()
            .map(|a| a.idle_nodes())
            .unwrap_or(0)
    }

    /// Total unclaimed cores across the pilot's healthy nodes.
    pub fn free_cores(&self) -> u32 {
        self.record
            .allocation
            .lock()
            .as_ref()
            .map(|a| a.free_cores())
            .unwrap_or(0)
    }

    /// Nodes currently pinned by a drain reservation.
    pub fn reserved_nodes(&self) -> usize {
        self.record
            .allocation
            .lock()
            .as_ref()
            .map(|a| a.reserved_nodes())
            .unwrap_or(0)
    }

    /// Resize the pilot to `nodes` attached nodes: growing appends fresh healthy
    /// nodes to the allocation, shrinking retires failed nodes first and then
    /// fully idle ones (all-or-nothing — busy nodes are never revoked). Returns
    /// the attached node count after the resize. Only handles obtained from
    /// [`crate::session::Session::submit_pilot`] carry the wiring to resize.
    pub fn resize(&self, nodes: usize) -> Result<usize, RuntimeError> {
        let manager = self.manager.as_ref().ok_or_else(|| {
            RuntimeError::InvalidState("this pilot handle is not bound to a session".into())
        })?;
        let attached = manager.resize(&self.record, nodes)?;
        // Growth adds capacity without releasing a slot: pass the wakeup on so
        // parked placements re-probe the expanded allocation.
        if let Some(scheduler) = &self.scheduler {
            scheduler.notify_capacity();
        }
        Ok(attached)
    }

    /// Block until the pilot is `Active` (default timeout: 300 s of real time).
    pub fn wait_active(&self) -> Result<PilotState, RuntimeError> {
        self.record
            .state
            .wait_until(|s| s == PilotState::Active, Duration::from_secs(300))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    fn clock() -> SharedClock {
        ClockSpec::scaled(1000.0).build()
    }

    #[test]
    fn state_cell_valid_transitions_and_timestamps() {
        let cell = StateCell::new(TaskState::New, clock());
        assert_eq!(cell.current(), TaskState::New);
        cell.transition(TaskState::Scheduling).unwrap();
        cell.transition(TaskState::Executing).unwrap();
        cell.transition(TaskState::Done).unwrap();
        assert!(cell.entered_at(TaskState::New).is_some());
        assert!(cell.entered_at(TaskState::Done).is_some());
        assert!(cell.entered_at(TaskState::StagingInput).is_none());
        assert!(cell.entered_at(TaskState::Done) >= cell.entered_at(TaskState::New));
        assert_eq!(cell.timestamps().len(), 4);
    }

    #[test]
    fn state_cell_rejects_illegal_transition() {
        let cell = StateCell::new(TaskState::New, clock());
        let err = cell.transition(TaskState::Done).unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidState(_)));
        // Same-state transition is a no-op.
        cell.transition(TaskState::New).unwrap();
    }

    #[test]
    fn state_cell_fail_records_reason() {
        let cell = StateCell::new(ServiceState::Launching, clock());
        cell.fail(ServiceState::Failed, "exec not found");
        assert_eq!(cell.current(), ServiceState::Failed);
        assert_eq!(cell.error(), Some("exec not found".to_string()));
    }

    #[test]
    fn wait_until_wakes_on_transition() {
        let cell = Arc::new(StateCell::new(ServiceState::New, clock()));
        let c2 = Arc::clone(&cell);
        let waiter = thread::spawn(move || {
            c2.wait_until(|s| s == ServiceState::Ready, Duration::from_secs(5))
        });
        thread::sleep(Duration::from_millis(10));
        for s in [
            ServiceState::Scheduling,
            ServiceState::Launching,
            ServiceState::Initializing,
            ServiceState::Publishing,
            ServiceState::Ready,
        ] {
            cell.transition(s).unwrap();
        }
        assert_eq!(waiter.join().unwrap().unwrap(), ServiceState::Ready);
    }

    #[test]
    fn wait_until_reports_failure() {
        let cell = Arc::new(StateCell::new(TaskState::Executing, clock()));
        let c2 = Arc::clone(&cell);
        let waiter =
            thread::spawn(move || c2.wait_until(|s| s == TaskState::Done, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(10));
        cell.fail(TaskState::Failed, "segfault");
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, RuntimeError::Failed(reason) if reason.contains("segfault")));
    }

    #[test]
    fn wait_until_times_out() {
        let cell = StateCell::new(TaskState::New, clock());
        let err = cell
            .wait_until(|s| s == TaskState::Done, Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::WaitTimeout { .. }));
    }

    #[test]
    fn bootstrap_times_total() {
        let bt = BootstrapTimes {
            launch_secs: 2.0,
            init_secs: 30.0,
            publish_secs: 0.5,
        };
        assert!((bt.total() - 32.5).abs() < 1e-12);
    }

    #[test]
    fn handles_expose_record_fields() {
        let c = clock();
        let task = TaskRecord::new(
            "task.000000".into(),
            TaskDescription::new("t"),
            PlatformId::Local,
            Arc::clone(&c),
        );
        let th = TaskHandle {
            record: Arc::clone(&task),
        };
        assert_eq!(th.id(), "task.000000");
        assert_eq!(th.state(), TaskState::New);
        assert_eq!(th.retries(), 0);
        assert!(th.error().is_none());
        assert!(format!("{th:?}").contains("task.000000"));

        let svc = ServiceRecord::new(
            "service.000000".into(),
            ServiceDescription::new("llm-0"),
            PlatformId::Local,
            Arc::clone(&c),
        );
        let sh = ServiceHandle {
            record: Arc::clone(&svc),
        };
        assert_eq!(sh.name(), "llm-0");
        assert_eq!(sh.endpoint_name(), "service.llm-0");
        assert!(sh.bootstrap_times().is_none());
        sh.request_stop();
        assert!(svc.stop.load(Ordering::Acquire));

        let pilot = PilotRecord::new(
            "pilot.000000".into(),
            PilotDescription::new(PlatformId::Local),
            c,
        );
        let ph = PilotHandle {
            record: pilot,
            manager: None,
            scheduler: None,
        };
        assert_eq!(ph.num_nodes(), 0);
        assert_eq!(ph.failed_nodes(), 0);
        assert_eq!(ph.attached_nodes(), 0);
        assert_eq!(ph.state(), PilotState::New);
        assert!(format!("{ph:?}").contains("pilot.000000"));
        // An unbound handle cannot resize.
        assert!(matches!(ph.resize(2), Err(RuntimeError::InvalidState(_))));
    }
}
