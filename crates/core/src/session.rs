//! The session: the client-facing entry point of the runtime.
//!
//! A [`Session`] owns all runtime components — pilot manager, scheduler, executor,
//! task/service/data managers, the endpoint registry, the state-update publisher, and
//! the metric recorders — and exposes the unified submission API of the paper's Fig. 2:
//! `submit_pilot`, `submit_service`, `submit_task`. Users (or third-party middleware)
//! observe entity state through the returned handles or by subscribing to the update
//! bus, exactly like flow ⑥ in the paper.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use hpcml_comm::pubsub::{Publisher, Subscriber};
use hpcml_comm::registry::EndpointRegistry;
use hpcml_platform::batch::Allocation;
use hpcml_platform::{GangPacking, PlatformId};
use hpcml_sim::clock::{ClockSpec, SharedClock};
use hpcml_sim::fault::FaultPlan;
use hpcml_sim::ids;

use crate::data::DataManager;
use crate::describe::{PilotDescription, ServiceDescription, ServicePlacement, TaskDescription};
use crate::error::RuntimeError;
use crate::executor::Executor;
use crate::metrics::RuntimeMetrics;
use crate::pilot::PilotManager;
use crate::records::{
    PilotHandle, PilotRecord, ServiceHandle, ServiceRecord, TaskHandle, TaskRecord,
};
use crate::scheduler::{Priority, Scheduler};
use crate::service_manager::ServiceManager;
use crate::states::PilotState;
use crate::task_manager::TaskManager;

/// Session-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Session name (used in identifiers and reports).
    pub name: String,
    /// Clock specification.
    pub clock: ClockSpec,
    /// Base RNG seed (all stochastic models derive from it).
    pub seed: u64,
    /// Default platform for entities that don't specify one.
    pub platform: PlatformId,
    /// Scheduler serve-window size: how many queued placements (services before
    /// tasks) may be attempted out of strict FIFO order. 1 = strict FIFO; larger
    /// windows let narrow tasks through behind a blocked multi-node gang.
    pub scheduler_lookahead: usize,
    /// Overtake budget before a parked head gang opens a backfill reservation
    /// (drains). `None` disables overtake-triggered draining. Defaults to
    /// [`crate::scheduler::DEFAULT_MAX_OVERTAKES`].
    pub scheduler_max_overtakes: Option<u32>,
    /// Parked-age threshold before a head gang drains regardless of overtakes.
    /// `None` (the default) drains on overtakes only.
    pub gang_drain_after: Option<Duration>,
    /// Default gang packing policy: [`GangPacking::Partial`] (the default) lets
    /// multi-node gangs best-fit across partially free nodes and lets draining gangs
    /// pin share-sized headroom; [`GangPacking::Whole`] restricts gangs (and drain
    /// pinning) to fully idle nodes. A task's explicit
    /// [`hpcml_platform::ResourceRequest::packing`] overrides this default.
    pub gang_packing: GangPacking,
    /// Allocator shard count for pilot allocations: `None` (the default) derives it
    /// from the host parallelism and the allocation's node count (one shard for
    /// small allocations — the exact single-lock behaviour); `Some(n)` pins it
    /// (clamped to `1..=nodes`), with `Some(1)` as the compatibility escape hatch.
    /// A pilot's explicit `PilotDescription::allocator_shards` overrides this.
    pub allocator_shards: Option<usize>,
    /// Scheduler wait-queue shard count: `None` (the default) derives it from the
    /// host parallelism and the allocation's node count (one shard for small
    /// allocations — the exact single-queue behaviour); `Some(n)` pins it (clamped
    /// to at least 1), with `Some(1)` as the bit-exact legacy escape hatch
    /// mirroring [`SessionConfig::allocator_shards`].
    pub scheduler_queue_shards: Option<usize>,
    /// Deterministic node-failure schedule, injected against the first pilot's
    /// allocation on the session clock (times are virtual seconds after the pilot
    /// becomes active). Empty (the default) injects nothing.
    pub fault_plan: FaultPlan,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            name: "session".to_string(),
            clock: ClockSpec::default(),
            seed: 42,
            platform: PlatformId::Local,
            scheduler_lookahead: 1,
            scheduler_max_overtakes: Some(crate::scheduler::DEFAULT_MAX_OVERTAKES),
            gang_drain_after: None,
            gang_packing: GangPacking::default(),
            allocator_shards: None,
            scheduler_queue_shards: None,
            fault_plan: FaultPlan::new(),
        }
    }
}

/// Builder for [`Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    config: SessionConfig,
}

impl SessionBuilder {
    /// Start building a session with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SessionBuilder {
            config: SessionConfig {
                name: name.into(),
                ..SessionConfig::default()
            },
        }
    }

    /// Set the default platform.
    pub fn platform(mut self, platform: PlatformId) -> Self {
        self.config.platform = platform;
        self
    }

    /// Set the clock specification.
    pub fn clock(mut self, clock: ClockSpec) -> Self {
        self.config.clock = clock;
        self
    }

    /// Set the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Set the scheduler's bounded-lookahead window (1 = strict FIFO). Wider windows
    /// keep single-node tasks flowing while a multi-node MPI gang waits for idle
    /// nodes at the head of the queue.
    pub fn scheduler_lookahead(mut self, lookahead: usize) -> Self {
        self.config.scheduler_lookahead = lookahead.max(1);
        self
    }

    /// Age threshold after which a parked head gang opens a backfill reservation
    /// (flips to *draining*): newly idle nodes are pinned to the gang until its full
    /// node span is reserved and it places atomically, while narrower requests keep
    /// backfilling around the reservation. Ageing by overtake count is on by default
    /// ([`crate::scheduler::DEFAULT_MAX_OVERTAKES`]); this adds a wall-clock trigger
    /// for workloads whose gangs must place within a bounded wait even when nothing
    /// overtakes them.
    pub fn gang_drain_after(mut self, after: Duration) -> Self {
        self.config.gang_drain_after = Some(after);
        self
    }

    /// Set the overtake budget before a parked head gang drains, or `None` to
    /// disable overtake-triggered draining (with no [`SessionBuilder::gang_drain_after`]
    /// either, gangs never drain — the pure bounded-lookahead behaviour, which can
    /// starve a wide gang indefinitely under a stream of narrower requests).
    pub fn scheduler_max_overtakes(mut self, budget: Option<u32>) -> Self {
        self.config.scheduler_max_overtakes = budget;
        self
    }

    /// Set the session's default gang packing policy. [`GangPacking::Partial`] (the
    /// default) places multi-node MPI gangs across partially free nodes by per-node
    /// best fit, so ranks-per-node shares below a whole node co-locate with other
    /// work instead of waiting for idle nodes — and a draining gang pins a node as
    /// soon as one member share of headroom frees, closing the sub-node-churn
    /// starvation gap. [`GangPacking::Whole`] restores whole-idle-node gangs. Tasks
    /// may override per request via `TaskDescription::gang_packing`.
    pub fn gang_packing(mut self, packing: GangPacking) -> Self {
        self.config.gang_packing = packing;
        self
    }

    /// Set the allocator shard count for pilot allocations: the allocation's
    /// mutable state (nodes + capacity index) is striped into that many
    /// independently locked shards, so concurrent placement traffic from many
    /// submitting threads stops serialising on one lock. Left unset, the count is
    /// derived from the host parallelism and the allocation's node count —
    /// collapsing to one shard for small allocations, which reproduces the
    /// single-lock allocator exactly. `allocator_shards(1)` is the explicit
    /// escape hatch pinning that behaviour at any scale.
    ///
    /// ```
    /// use hpcml_runtime::session::Session;
    ///
    /// // Stripe pilot allocations into 8 allocator shards…
    /// let tuned = Session::builder("tuned").allocator_shards(8).build().unwrap();
    /// assert_eq!(tuned.config().allocator_shards, Some(8));
    /// // …or pin the single-lock allocator for bit-exact legacy placement order.
    /// let legacy = Session::builder("legacy").allocator_shards(1).build().unwrap();
    /// assert_eq!(legacy.config().allocator_shards, Some(1));
    /// ```
    pub fn allocator_shards(mut self, shards: usize) -> Self {
        self.config.allocator_shards = Some(shards.max(1));
        self
    }

    /// Set the scheduler's wait-queue shard count: parked placements are striped
    /// into that many independently locked FIFO shards (services always on shard
    /// 0, which keeps their priority absolute), so admission and wakeup traffic
    /// from many submitting threads stops serialising on one queue lock. Left
    /// unset, the count is derived from the host parallelism and the pilot
    /// allocation's node count — collapsing to one shard for small allocations,
    /// which reproduces the single-queue scheduler exactly.
    /// `scheduler_queue_shards(1)` is the explicit escape hatch pinning that
    /// behaviour at any scale.
    ///
    /// ```
    /// use hpcml_runtime::session::Session;
    ///
    /// // Stripe the scheduler front-end into 4 wait-queue shards…
    /// let tuned = Session::builder("tuned").scheduler_queue_shards(4).build().unwrap();
    /// assert_eq!(tuned.config().scheduler_queue_shards, Some(4));
    /// // …or pin the single wait queue for bit-exact legacy placement order.
    /// let legacy = Session::builder("legacy").scheduler_queue_shards(1).build().unwrap();
    /// assert_eq!(legacy.config().scheduler_queue_shards, Some(1));
    /// ```
    pub fn scheduler_queue_shards(mut self, shards: usize) -> Self {
        self.config.scheduler_queue_shards = Some(shards.max(1));
        self
    }

    /// Set a deterministic node-failure schedule: each [`hpcml_sim::FaultEvent`]
    /// fails its node in the first pilot's allocation once the session clock
    /// reaches the event time (measured from the moment the pilot becomes
    /// active). Co-resident slots are evicted and their tasks retry per their
    /// [`TaskDescription::max_retries`] budget. Build plans explicitly with
    /// [`FaultPlan::fail_at`] or derive them from a seed with
    /// [`FaultPlan::seeded`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.config.fault_plan = plan;
        self
    }

    /// Build the session.
    pub fn build(self) -> Result<Session, RuntimeError> {
        Ok(Session::with_config(self.config))
    }
}

/// A runtime session: the unified client API.
pub struct Session {
    config: SessionConfig,
    id: String,
    clock: SharedClock,
    metrics: Arc<RuntimeMetrics>,
    registry: Arc<EndpointRegistry>,
    publisher: Publisher,
    pilot_manager: Arc<PilotManager>,
    task_manager: Arc<TaskManager>,
    service_manager: Arc<ServiceManager>,
    executor: Arc<Executor>,
    scheduler: Mutex<Option<Arc<Scheduler>>>,
    pilots: Mutex<Vec<Arc<PilotRecord>>>,
    closed: AtomicBool,
    /// Asks the detached fault-injector thread to stop firing (it is never
    /// joined: under a manual clock its sleeps may outlive the session).
    fault_stop: Arc<AtomicBool>,
    /// Set once the injector thread has been spawned (first active pilot).
    fault_started: AtomicBool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("platform", &self.config.platform)
            .field("tasks", &self.task_manager.len())
            .field("services", &self.service_manager.len())
            .finish()
    }
}

impl Session {
    /// Start building a session.
    pub fn builder(name: impl Into<String>) -> SessionBuilder {
        SessionBuilder::new(name)
    }

    /// Create a session from an explicit configuration.
    pub fn with_config(config: SessionConfig) -> Self {
        let clock = config.clock.build();
        let metrics = RuntimeMetrics::new();
        let registry = Arc::new(EndpointRegistry::new());
        // State updates fan out through the comm fabric; its comm.* series (fan-out
        // width, batch sizes) land in the session metrics like every other scalar.
        let comm_metrics = Arc::clone(&metrics);
        let publisher = Publisher::new().with_sink(Arc::new(move |name: &str, value: f64| {
            comm_metrics.record_scalar(name, value);
        }));
        let data = Arc::new(DataManager::new(
            Arc::clone(&clock),
            Arc::clone(&metrics),
            config.seed ^ 0xDA7A,
        ));
        let executor = Executor::new(
            Arc::clone(&clock),
            Arc::clone(&metrics),
            Arc::clone(&registry),
            data,
            publisher.clone(),
            config.seed,
        );
        Session {
            id: ids::next_id(&format!("session.{}", config.name)),
            clock: Arc::clone(&clock),
            metrics,
            registry: Arc::clone(&registry),
            publisher,
            pilot_manager: Arc::new(PilotManager::new(Arc::clone(&clock), config.seed ^ 0x9107)),
            task_manager: Arc::new(TaskManager::new()),
            service_manager: Arc::new(ServiceManager::new(registry, Arc::clone(&clock))),
            executor,
            scheduler: Mutex::new(None),
            pilots: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            fault_stop: Arc::new(AtomicBool::new(false)),
            fault_started: AtomicBool::new(false),
            config,
        }
    }

    fn ensure_open(&self) -> Result<(), RuntimeError> {
        if self.closed.load(Ordering::Acquire) {
            Err(RuntimeError::SessionClosed)
        } else {
            Ok(())
        }
    }

    /// Session identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The session's virtual clock.
    pub fn clock(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    /// Shared metric recorders (BT / RT / IT plus scalar series).
    pub fn metrics(&self) -> Arc<RuntimeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The endpoint registry services publish into.
    pub fn endpoint_registry(&self) -> Arc<EndpointRegistry> {
        Arc::clone(&self.registry)
    }

    /// The service manager (readiness, liveness, shutdown).
    pub fn service_manager(&self) -> Arc<ServiceManager> {
        Arc::clone(&self.service_manager)
    }

    /// The task manager (completion tracking).
    pub fn task_manager(&self) -> Arc<TaskManager> {
        Arc::clone(&self.task_manager)
    }

    /// Subscribe to entity state updates (topics `state.task.*`, `state.service.*`).
    pub fn subscribe_updates(&self, prefixes: &[&str]) -> Subscriber {
        self.publisher.subscribe(prefixes)
    }

    /// Submit a pilot and block until it is active (its allocation is granted).
    pub fn submit_pilot(&self, description: PilotDescription) -> Result<PilotHandle, RuntimeError> {
        self.ensure_open()?;
        let mut description = description;
        // Session-level allocator sharding applies unless the pilot pins its own.
        if description.allocator_shards.is_none() {
            description.allocator_shards = self.config.allocator_shards;
        }
        let record = PilotRecord::new(ids::next_id("pilot"), description, Arc::clone(&self.clock));
        self.pilot_manager.activate(&record)?;
        let allocation =
            record.allocation.lock().clone().ok_or_else(|| {
                RuntimeError::InvalidState("pilot active without allocation".into())
            })?;
        *self.scheduler.lock() = Some(Arc::new(
            Scheduler::with_lookahead(Arc::clone(&allocation), self.config.scheduler_lookahead)
                .with_max_overtakes(self.config.scheduler_max_overtakes)
                .with_gang_drain_after(self.config.gang_drain_after)
                .with_gang_packing(self.config.gang_packing)
                .with_queue_shards(self.config.scheduler_queue_shards),
        ));
        self.pilots.lock().push(Arc::clone(&record));
        self.spawn_fault_injector(&allocation);
        Ok(PilotHandle {
            record,
            manager: Some(Arc::clone(&self.pilot_manager)),
            scheduler: self.scheduler.lock().clone(),
        })
    }

    /// Spawn the detached fault-injector thread on the first active pilot: it
    /// sleeps on the session clock to each scheduled event time and fails the
    /// named node in `allocation`, evicting co-resident slots. The thread is
    /// deliberately never joined — under a manual clock a pending sleep may never
    /// return, and `close()` must not hang on it; a stop flag retires it instead.
    fn spawn_fault_injector(&self, allocation: &Arc<Allocation>) {
        if self.config.fault_plan.is_empty() || self.fault_started.swap(true, Ordering::AcqRel) {
            return;
        }
        let plan = self.config.fault_plan.clone();
        let clock = Arc::clone(&self.clock);
        let metrics = Arc::clone(&self.metrics);
        let stop = Arc::clone(&self.fault_stop);
        let allocation = Arc::clone(allocation);
        let epoch = clock.now().as_secs_f64();
        let _ = std::thread::Builder::new()
            .name("fault-injector".into())
            .spawn(move || {
                for event in plan.events() {
                    let delay = event.at_secs - (clock.now().as_secs_f64() - epoch);
                    if delay > 0.0 {
                        clock.sleep(Duration::from_secs_f64(delay));
                    }
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    if let Ok(victims) = allocation.fail_node(event.node) {
                        metrics.record_scalar("node.failures", 1.0);
                        metrics.record_scalar("node.failure.victim_slots", victims.len() as f64);
                    }
                }
            });
    }

    /// Submit a service instance. Local services require an active pilot; remote
    /// services are started on their remote platform without consuming pilot resources.
    pub fn submit_service(
        &self,
        description: ServiceDescription,
    ) -> Result<ServiceHandle, RuntimeError> {
        self.ensure_open()?;
        let platform = match description.placement {
            ServicePlacement::LocalPilot => {
                let pilots = self.pilots.lock();
                let pilot = pilots
                    .iter()
                    .find(|p| p.state.current() == PilotState::Active)
                    .ok_or_else(|| {
                        RuntimeError::InvalidState(
                            "cannot submit a local service before a pilot is active".into(),
                        )
                    })?;
                pilot.description.platform
            }
            ServicePlacement::Remote(platform) => platform,
        };
        let record = ServiceRecord::new(
            ids::next_id("service"),
            description.clone(),
            platform,
            Arc::clone(&self.clock),
        );
        self.service_manager.add(Arc::clone(&record));
        let scheduler = match description.placement {
            ServicePlacement::LocalPilot => self.scheduler.lock().clone(),
            ServicePlacement::Remote(_) => None,
        };
        self.executor.spawn_service(Arc::clone(&record), scheduler);
        Ok(ServiceHandle { record })
    }

    /// The platform tasks land on: the active pilot's, or the session default.
    fn active_platform(&self) -> PlatformId {
        let pilots = self.pilots.lock();
        pilots
            .iter()
            .find(|p| p.state.current() == PilotState::Active)
            .map(|p| p.description.platform)
            .unwrap_or(self.config.platform)
    }

    fn new_task_record(
        &self,
        description: TaskDescription,
        platform: PlatformId,
    ) -> Arc<TaskRecord> {
        let record = TaskRecord::new(
            ids::next_id("task"),
            description,
            platform,
            Arc::clone(&self.clock),
        );
        self.task_manager.add(Arc::clone(&record));
        record
    }

    /// Submit a task. Requires an active pilot.
    pub fn submit_task(&self, description: TaskDescription) -> Result<TaskHandle, RuntimeError> {
        self.ensure_open()?;
        let record = self.new_task_record(description, self.active_platform());
        let scheduler = self.scheduler.lock().clone();
        self.executor.spawn_task(Arc::clone(&record), scheduler);
        Ok(TaskHandle { record })
    }

    /// Submit a batch of tasks through the scheduler's batched admission path:
    /// dependency-free tasks with a satisfiable shape are enqueued as one burst —
    /// one queue-shard lock round-trip per touched shard instead of one per task —
    /// and their executor threads consume the pre-admitted tickets, preserving the
    /// batch's arrival order. Tasks with service dependencies or impossible shapes
    /// fall back to the one-by-one path so they fail (or wait) individually. The
    /// admission's fan-out shape is recorded as `task.admission.batch_size`,
    /// `task.admission.shard_batch` and `task.admission.shard_wakeups` metrics.
    pub fn submit_tasks(
        &self,
        descriptions: impl IntoIterator<Item = TaskDescription>,
    ) -> Result<Vec<TaskHandle>, RuntimeError> {
        self.ensure_open()?;
        let descriptions: Vec<TaskDescription> = descriptions.into_iter().collect();
        let scheduler = self.scheduler.lock().clone();
        let Some(scheduler) = scheduler else {
            // No active pilot: each task fails in its own thread, exactly as with
            // one-by-one submission.
            return descriptions
                .into_iter()
                .map(|d| self.submit_task(d))
                .collect();
        };
        let batchable: Vec<bool> = descriptions
            .iter()
            .map(|d| d.after_services.is_empty() && scheduler.admissible(&d.resources))
            .collect();
        if batchable.iter().filter(|b| **b).count() < 2 {
            return descriptions
                .into_iter()
                .map(|d| self.submit_task(d))
                .collect();
        }
        let requests: Vec<(hpcml_platform::ResourceRequest, Priority)> = descriptions
            .iter()
            .zip(&batchable)
            .filter(|(_, batch)| **batch)
            .map(|(d, _)| (d.resources, Priority::Task))
            .collect();
        let admission = scheduler.submit_batch(&requests)?;
        self.metrics
            .record_scalar("task.admission.batch_size", admission.tickets.len() as f64);
        for (batched, woken) in admission.shard_batches.iter().zip(&admission.shard_wakeups) {
            if *batched > 0 {
                self.metrics
                    .record_scalar("task.admission.shard_batch", *batched as f64);
            }
            if *woken > 0 {
                self.metrics
                    .record_scalar("task.admission.shard_wakeups", *woken as f64);
            }
        }
        let platform = self.active_platform();
        let mut tickets = admission.tickets.into_iter();
        let mut handles = Vec::with_capacity(descriptions.len());
        for (description, batch) in descriptions.into_iter().zip(batchable) {
            if batch {
                let ticket = tickets.next().expect("one ticket per batched task");
                let record = self.new_task_record(description, platform);
                self.executor.spawn_task_admitted(
                    Arc::clone(&record),
                    Arc::clone(&scheduler),
                    ticket,
                );
                handles.push(TaskHandle { record });
            } else {
                match self.submit_task(description) {
                    Ok(handle) => handles.push(handle),
                    Err(e) => {
                        // Return the not-yet-spawned tickets so they don't block
                        // their shards' FIFOs.
                        for ticket in tickets {
                            scheduler.cancel_admitted(ticket);
                        }
                        return Err(e);
                    }
                }
            }
        }
        Ok(handles)
    }

    /// Block until every submitted task reached a terminal state.
    pub fn wait_tasks(&self, timeout: Duration) -> Result<(), RuntimeError> {
        self.task_manager.wait_all(timeout).map(|_| ())
    }

    /// Orderly shutdown: stop all services, wait for all entity threads, terminate
    /// pilots. Idempotent.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        self.fault_stop.store(true, Ordering::Release);
        self.service_manager.stop_all();
        self.executor.join_all();
        for pilot in self.pilots.lock().iter() {
            let _ = self.pilot_manager.terminate(pilot);
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::TaskKind;
    use crate::states::{ServiceState, TaskState};
    use hpcml_serving::ModelSpec;

    fn session(scale: f64) -> Session {
        Session::builder("test")
            .platform(PlatformId::Local)
            .clock(ClockSpec::scaled(scale))
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn pilot_service_task_end_to_end() {
        let s = session(2000.0);
        let pilot = s
            .submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
            .unwrap();
        assert_eq!(pilot.state(), PilotState::Active);
        assert_eq!(pilot.num_nodes(), 2);

        let svc = s
            .submit_service(
                ServiceDescription::new("noop-0")
                    .model(ModelSpec::noop())
                    .gpus(1),
            )
            .unwrap();
        svc.wait_ready().unwrap();
        assert_eq!(svc.state(), ServiceState::Ready);
        assert!(s.service_manager().probe("noop-0").unwrap());

        let task = s
            .submit_task(
                TaskDescription::new("client")
                    .kind(TaskKind::inference_client("noop-0", 5))
                    .after_service("noop-0"),
            )
            .unwrap();
        task.wait_done_timeout(Duration::from_secs(60)).unwrap();
        assert_eq!(task.state(), TaskState::Done);
        assert_eq!(s.metrics().response_count(), 5);

        s.close();
        assert_eq!(svc.state(), ServiceState::Stopped);
        // Submitting after close fails.
        assert!(matches!(
            s.submit_task(TaskDescription::new("late")),
            Err(RuntimeError::SessionClosed)
        ));
    }

    #[test]
    fn local_service_before_pilot_is_rejected() {
        let s = session(10_000.0);
        let err = s
            .submit_service(ServiceDescription::new("early"))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidState(_)));
    }

    #[test]
    fn task_without_pilot_fails_at_execution() {
        let s = session(10_000.0);
        let task = s.submit_task(TaskDescription::new("orphan")).unwrap();
        let state = task.wait_final(Duration::from_secs(10)).unwrap();
        assert_eq!(state, TaskState::Failed);
        assert!(task.error().unwrap().contains("pilot"));
    }

    #[test]
    fn remote_service_needs_no_pilot() {
        let s = session(2000.0);
        let svc = s
            .submit_service(
                ServiceDescription::new("remote-noop")
                    .model(ModelSpec::noop())
                    .remote(PlatformId::R3Cloud),
            )
            .unwrap();
        svc.wait_ready().unwrap();
        // Remote services do not contribute bootstrap samples (paper §IV).
        assert_eq!(s.metrics().bootstrap_count(), 0);
        s.close();
    }

    #[test]
    fn state_updates_are_published() {
        let s = session(5000.0);
        let updates = s.subscribe_updates(&["state.task"]);
        s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
            .unwrap();
        let task = s.submit_task(TaskDescription::new("t")).unwrap();
        task.wait_done_timeout(Duration::from_secs(20)).unwrap();
        let received = updates.drain();
        assert!(!received.is_empty());
        assert!(received.iter().any(|m| m.header("state") == Some("Done")));
        s.close();
    }

    #[test]
    fn submit_tasks_batch_and_wait() {
        let s = session(10_000.0);
        s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
            .unwrap();
        let handles = s
            .submit_tasks((0..6).map(|i| {
                TaskDescription::new(format!("t{i}"))
                    .kind(TaskKind::compute_secs(1.0))
                    .cores(1)
            }))
            .unwrap();
        assert_eq!(handles.len(), 6);
        s.wait_tasks(Duration::from_secs(60)).unwrap();
        assert!(handles.iter().all(|h| h.state() == TaskState::Done));
        assert!(format!("{s:?}").contains("tasks"));
        s.close();
    }

    #[test]
    fn allocator_shards_flow_from_builder_to_the_pilot_allocation() {
        let s = Session::builder("sharded")
            .platform(PlatformId::Local)
            .clock(ClockSpec::scaled(10_000.0))
            .allocator_shards(2)
            .build()
            .unwrap();
        let pilot = s
            .submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
            .unwrap();
        let alloc = pilot.record.allocation.lock().clone().unwrap();
        assert_eq!(alloc.num_shards(), 2, "session knob reaches the allocation");
        // Tasks still place and complete against the sharded allocator.
        let handles = s
            .submit_tasks((0..4).map(|i| {
                TaskDescription::new(format!("t{i}"))
                    .kind(TaskKind::compute_secs(1.0))
                    .cores(1)
            }))
            .unwrap();
        s.wait_tasks(Duration::from_secs(60)).unwrap();
        assert!(handles.iter().all(|h| h.state() == TaskState::Done));
        s.close();
        // A pilot-level override beats the session default.
        let s2 = Session::builder("pilot-override")
            .platform(PlatformId::Local)
            .clock(ClockSpec::scaled(10_000.0))
            .allocator_shards(2)
            .build()
            .unwrap();
        let pilot2 = s2
            .submit_pilot(
                PilotDescription::new(PlatformId::Local)
                    .nodes(2)
                    .allocator_shards(1),
            )
            .unwrap();
        let alloc2 = pilot2.record.allocation.lock().clone().unwrap();
        assert_eq!(alloc2.num_shards(), 1);
        s2.close();
    }

    #[test]
    fn queue_shards_flow_from_builder_and_batched_admission_records_metrics() {
        let s = Session::builder("queue-sharded")
            .platform(PlatformId::Local)
            .clock(ClockSpec::scaled(10_000.0))
            .scheduler_queue_shards(2)
            .build()
            .unwrap();
        s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
            .unwrap();
        let scheduler = s.scheduler.lock().clone().unwrap();
        assert_eq!(
            scheduler.queue_shards(),
            2,
            "session knob reaches the scheduler"
        );
        // A multi-task submission goes through batched admission and completes.
        let handles = s
            .submit_tasks((0..6).map(|i| {
                TaskDescription::new(format!("b{i}"))
                    .kind(TaskKind::compute_secs(1.0))
                    .cores(1)
            }))
            .unwrap();
        s.wait_tasks(Duration::from_secs(60)).unwrap();
        assert!(handles.iter().all(|h| h.state() == TaskState::Done));
        assert_eq!(
            s.metrics().scalar_values("task.admission.batch_size"),
            vec![6.0],
            "one batch of six tasks was admitted"
        );
        let per_shard: f64 = s
            .metrics()
            .scalar_values("task.admission.shard_batch")
            .iter()
            .sum();
        assert_eq!(per_shard as usize, 6, "shard batches cover the admission");
        s.close();
    }

    #[test]
    fn fault_plan_evicts_a_running_task_which_retries_to_done() {
        let s = Session::builder("faulty")
            .platform(PlatformId::Local)
            .clock(ClockSpec::scaled(1000.0))
            .seed(7)
            .fault_plan(FaultPlan::new().fail_at(5.0, 0))
            .build()
            .unwrap();
        let pilot = s
            .submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
            .unwrap();
        let task = s
            .submit_task(
                TaskDescription::new("victim")
                    .kind(TaskKind::compute_secs(60.0))
                    .cores(8)
                    .max_retries(2),
            )
            .unwrap();
        task.wait_done_timeout(Duration::from_secs(600)).unwrap();
        assert_eq!(task.state(), TaskState::Done);
        assert_eq!(task.retries(), 1, "one eviction, one retry");
        assert_eq!(s.metrics().scalar_values("node.failures"), vec![1.0]);
        assert_eq!(pilot.failed_nodes(), 1);
        assert_eq!(pilot.attached_nodes(), 2, "failed node stays attached");
        s.close();
    }

    #[test]
    fn pilot_resize_grows_and_shrinks_the_allocation() {
        let s = session(5000.0);
        let pilot = s
            .submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(2))
            .unwrap();
        let batch = s.pilot_manager.batch_system(PlatformId::Delta);
        assert_eq!(pilot.attached_nodes(), 2);
        assert_eq!(batch.nodes_in_use(), 2);
        assert_eq!(pilot.resize(4).unwrap(), 4);
        assert_eq!(pilot.attached_nodes(), 4);
        assert_eq!(batch.nodes_in_use(), 4);
        // Asking for more nodes than the platform has fails cleanly and leaves
        // the allocation untouched.
        let err = pilot.resize(100_000).unwrap_err();
        assert!(matches!(err, RuntimeError::Batch(_)));
        assert_eq!(pilot.attached_nodes(), 4);
        assert_eq!(batch.nodes_in_use(), 4);
        assert_eq!(pilot.resize(1).unwrap(), 1);
        assert_eq!(batch.nodes_in_use(), 1);
        // Work still places on the shrunken pilot.
        let task = s
            .submit_task(
                TaskDescription::new("t")
                    .kind(TaskKind::compute_secs(1.0))
                    .cores(1),
            )
            .unwrap();
        task.wait_done_timeout(Duration::from_secs(60)).unwrap();
        assert_eq!(task.state(), TaskState::Done);
        s.close();
        assert_eq!(batch.nodes_in_use(), 0, "terminate releases resized pilot");
    }

    #[test]
    fn session_config_defaults() {
        let cfg = SessionConfig::default();
        assert_eq!(cfg.platform, PlatformId::Local);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.scheduler_lookahead, 1);
        assert_eq!(
            cfg.scheduler_max_overtakes,
            Some(crate::scheduler::DEFAULT_MAX_OVERTAKES)
        );
        assert_eq!(cfg.gang_drain_after, None);
        assert_eq!(cfg.gang_packing, GangPacking::Partial);
        assert_eq!(cfg.allocator_shards, None, "shards derived unless pinned");
        assert_eq!(
            cfg.scheduler_queue_shards, None,
            "queue shards derived unless pinned"
        );
        let tuned = Session::builder("tuned")
            .gang_drain_after(Duration::from_secs(5))
            .scheduler_max_overtakes(Some(4))
            .gang_packing(GangPacking::Whole)
            .allocator_shards(0)
            .scheduler_queue_shards(0)
            .build()
            .unwrap();
        assert_eq!(
            tuned.config().gang_drain_after,
            Some(Duration::from_secs(5))
        );
        assert_eq!(tuned.config().scheduler_max_overtakes, Some(4));
        assert_eq!(tuned.config().gang_packing, GangPacking::Whole);
        assert_eq!(
            tuned.config().allocator_shards,
            Some(1),
            "builder clamps the shard count to at least 1"
        );
        assert_eq!(
            tuned.config().scheduler_queue_shards,
            Some(1),
            "builder clamps the queue-shard count to at least 1"
        );
        let s = Session::with_config(cfg.clone());
        assert_eq!(s.config(), &cfg);
        assert!(s.id().starts_with("session."));
        assert!(s.clock().scale() > 1.0);
        assert!(s.endpoint_registry().is_empty());
        assert!(s.task_manager().is_empty());
    }
}
