//! The runtime's error type.

use std::fmt;

use hpcml_comm::CommError;
use hpcml_platform::{BatchError, ResourceError};

/// Errors surfaced through the runtime's public API.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The platform's batch system rejected a pilot request.
    Batch(BatchError),
    /// Slot allocation failed in a way that cannot be retried.
    Resource(ResourceError),
    /// A messaging operation failed.
    Comm(CommError),
    /// An entity was referenced that the session does not know about.
    UnknownEntity(String),
    /// An operation was attempted in an illegal state (e.g. submitting a task before
    /// any pilot is active).
    InvalidState(String),
    /// Waiting for a state change timed out.
    WaitTimeout {
        /// Entity waited on.
        entity: String,
        /// State that was awaited.
        awaited: String,
    },
    /// A task or service failed; the payload carries the reason.
    Failed(String),
    /// The session is already closed.
    SessionClosed,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Batch(e) => write!(f, "batch system error: {e}"),
            RuntimeError::Resource(e) => write!(f, "resource error: {e}"),
            RuntimeError::Comm(e) => write!(f, "communication error: {e}"),
            RuntimeError::UnknownEntity(id) => write!(f, "unknown entity: {id}"),
            RuntimeError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            RuntimeError::WaitTimeout { entity, awaited } => {
                write!(f, "timed out waiting for {entity} to reach {awaited}")
            }
            RuntimeError::Failed(reason) => write!(f, "entity failed: {reason}"),
            RuntimeError::SessionClosed => write!(f, "session is closed"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<BatchError> for RuntimeError {
    fn from(e: BatchError) -> Self {
        RuntimeError::Batch(e)
    }
}

impl From<ResourceError> for RuntimeError {
    fn from(e: ResourceError) -> Self {
        RuntimeError::Resource(e)
    }
}

impl From<CommError> for RuntimeError {
    fn from(e: CommError) -> Self {
        RuntimeError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RuntimeError = BatchError::EmptyRequest.into();
        assert!(matches!(e, RuntimeError::Batch(_)));
        assert!(e.to_string().contains("batch"));

        let e: RuntimeError = ResourceError::InsufficientResources.into();
        assert!(e.to_string().contains("resource"));

        let e: RuntimeError = CommError::Timeout.into();
        assert!(e.to_string().contains("communication"));

        assert!(RuntimeError::UnknownEntity("task.1".into())
            .to_string()
            .contains("task.1"));
        assert!(RuntimeError::WaitTimeout {
            entity: "svc.1".into(),
            awaited: "Ready".into()
        }
        .to_string()
        .contains("Ready"));
        assert!(RuntimeError::SessionClosed.to_string().contains("closed"));
        assert!(RuntimeError::Failed("boom".into())
            .to_string()
            .contains("boom"));
        assert!(RuntimeError::InvalidState("no pilot".into())
            .to_string()
            .contains("no pilot"));
    }
}
