//! The service manager: the paper's new runtime component.
//!
//! The `ServiceManager` complements the `TaskManager`: it tracks every service instance,
//! knows whether each one is ready, probes liveness over the service's control interface
//! (ping/pong), and performs orderly shutdown (control message + stop flag). Workflows
//! use it to guarantee that "each service is running and available to receive client
//! requests" before dependent tasks execute.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use hpcml_comm::link::Link;
use hpcml_comm::message::Message;
use hpcml_comm::registry::EndpointRegistry;
use hpcml_serving::protocol::{KIND_PING, KIND_PONG, KIND_SHUTDOWN};
use hpcml_sim::clock::SharedClock;

use crate::error::RuntimeError;
use crate::records::ServiceRecord;
use crate::states::ServiceState;

/// Directory and lifecycle controller of all service instances in a session.
pub struct ServiceManager {
    services: RwLock<BTreeMap<String, Arc<ServiceRecord>>>,
    registry: Arc<EndpointRegistry>,
    clock: SharedClock,
}

impl std::fmt::Debug for ServiceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceManager")
            .field("services", &self.len())
            .field("ready", &self.ready_count())
            .finish()
    }
}

impl ServiceManager {
    /// Create a service manager bound to the session's endpoint registry.
    pub fn new(registry: Arc<EndpointRegistry>, clock: SharedClock) -> Self {
        ServiceManager {
            services: RwLock::new(BTreeMap::new()),
            registry,
            clock,
        }
    }

    /// Register a service record (keyed by its user-facing name).
    pub fn add(&self, record: Arc<ServiceRecord>) {
        self.services
            .write()
            .insert(record.description.name.clone(), record);
    }

    /// Look a service up by name.
    pub fn get(&self, name: &str) -> Option<Arc<ServiceRecord>> {
        self.services.read().get(name).cloned()
    }

    /// All service names.
    pub fn names(&self) -> Vec<String> {
        self.services.read().keys().cloned().collect()
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// True if no service is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of services currently in the `Ready` state.
    pub fn ready_count(&self) -> usize {
        self.services
            .read()
            .values()
            .filter(|r| r.state.current() == ServiceState::Ready)
            .count()
    }

    /// Per-state counts.
    pub fn state_counts(&self) -> BTreeMap<ServiceState, usize> {
        let mut counts = BTreeMap::new();
        for record in self.services.read().values() {
            *counts.entry(record.state.current()).or_insert(0) += 1;
        }
        counts
    }

    /// Block until the named service is ready (real-time timeout).
    pub fn wait_ready(&self, name: &str, timeout: Duration) -> Result<(), RuntimeError> {
        let record = self
            .get(name)
            .ok_or_else(|| RuntimeError::UnknownEntity(name.to_string()))?;
        record
            .state
            .wait_until(|s| s == ServiceState::Ready, timeout)
            .map(|_| ())
    }

    /// Block until every registered service is ready.
    pub fn wait_all_ready(&self, timeout: Duration) -> Result<(), RuntimeError> {
        for name in self.names() {
            self.wait_ready(&name, timeout)?;
        }
        Ok(())
    }

    /// Probe the liveness of a service by pinging its endpoint. Returns `Ok(true)` when
    /// the service answered and reported itself ready.
    pub fn probe(&self, name: &str) -> Result<bool, RuntimeError> {
        let record = self
            .get(name)
            .ok_or_else(|| RuntimeError::UnknownEntity(name.to_string()))?;
        let endpoint = record.endpoint_name();
        let entry = self.registry.lookup(&endpoint).ok_or(RuntimeError::Comm(
            hpcml_comm::CommError::EndpointNotFound(endpoint),
        ))?;
        let client = entry.handle.connect(Link::instant(Arc::clone(&self.clock)));
        let reply = client
            .request_timeout(
                Message::new(record.endpoint_name(), KIND_PING),
                Duration::from_secs(5),
            )
            .map_err(RuntimeError::Comm)?;
        Ok(reply.kind == KIND_PONG && reply.header("ready") == Some("true"))
    }

    /// Orderly shutdown of one service: send the shutdown control message (if the
    /// endpoint is still registered), set the stop flag, and mark the state.
    ///
    /// The control message is sent *before* the stop flag is raised: if the serve loop
    /// noticed the flag first it would exit without consuming the message, and the
    /// manager would needlessly wait for a reply that never comes.
    pub fn stop(&self, name: &str) -> Result<(), RuntimeError> {
        let record = self
            .get(name)
            .ok_or_else(|| RuntimeError::UnknownEntity(name.to_string()))?;
        if record.state.current() == ServiceState::Ready {
            record.state.transition(ServiceState::Stopping)?;
        }
        if let Some(entry) = self.registry.lookup(&record.endpoint_name()) {
            let client = entry.handle.connect(Link::instant(Arc::clone(&self.clock)));
            // Best effort: the serve loop also honours the stop flag.
            let _ = client.request_timeout(
                Message::new(record.endpoint_name(), KIND_SHUTDOWN),
                Duration::from_millis(500),
            );
        }
        record.request_stop();
        Ok(())
    }

    /// Stop every registered service.
    pub fn stop_all(&self) {
        for name in self.names() {
            let _ = self.stop(&name);
        }
    }

    /// The endpoint registry services publish into.
    pub fn registry(&self) -> &Arc<EndpointRegistry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::ServiceDescription;
    use hpcml_comm::reqrep::ReqRepServer;
    use hpcml_platform::PlatformId;
    use hpcml_serving::host::shared_host;
    use hpcml_serving::{InferenceService, ModelSpec};
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    fn manager() -> (Arc<EndpointRegistry>, ServiceManager, SharedClock) {
        let clock = ClockSpec::scaled(1000.0).build();
        let registry = Arc::new(EndpointRegistry::new());
        let sm = ServiceManager::new(Arc::clone(&registry), Arc::clone(&clock));
        (registry, sm, clock)
    }

    fn record(name: &str, clock: SharedClock) -> Arc<ServiceRecord> {
        ServiceRecord::new(
            format!("service.test-{name}"),
            ServiceDescription::new(name),
            PlatformId::Local,
            clock,
        )
    }

    #[test]
    fn add_get_names_counts() {
        let (_reg, sm, clock) = manager();
        assert!(sm.is_empty());
        sm.add(record("a", Arc::clone(&clock)));
        sm.add(record("b", clock));
        assert_eq!(sm.len(), 2);
        assert_eq!(sm.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(sm.get("a").is_some());
        assert!(sm.get("zz").is_none());
        assert_eq!(sm.ready_count(), 0);
        assert_eq!(sm.state_counts()[&ServiceState::New], 2);
        assert!(format!("{sm:?}").contains("services"));
    }

    #[test]
    fn wait_ready_unknown_service_errors() {
        let (_reg, sm, _clock) = manager();
        assert!(matches!(
            sm.wait_ready("ghost", Duration::from_millis(10)),
            Err(RuntimeError::UnknownEntity(_))
        ));
        assert!(matches!(
            sm.probe("ghost"),
            Err(RuntimeError::UnknownEntity(_))
        ));
        assert!(matches!(
            sm.stop("ghost"),
            Err(RuntimeError::UnknownEntity(_))
        ));
    }

    #[test]
    fn wait_ready_follows_state_transitions() {
        let (_reg, sm, clock) = manager();
        let rec = record("svc", clock);
        sm.add(Arc::clone(&rec));
        let err = sm.wait_ready("svc", Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, RuntimeError::WaitTimeout { .. }));
        for s in [
            ServiceState::Scheduling,
            ServiceState::Launching,
            ServiceState::Initializing,
            ServiceState::Publishing,
            ServiceState::Ready,
        ] {
            rec.state.transition(s).unwrap();
        }
        sm.wait_ready("svc", Duration::from_secs(1)).unwrap();
        sm.wait_all_ready(Duration::from_secs(1)).unwrap();
        assert_eq!(sm.ready_count(), 1);
    }

    #[test]
    fn probe_and_stop_against_live_endpoint() {
        let (registry, sm, clock) = manager();
        let rec = record("live", Arc::clone(&clock));
        sm.add(Arc::clone(&rec));

        // Stand a real service loop up behind the record's endpoint.
        let host = shared_host(ModelSpec::noop(), Arc::clone(&clock), 3);
        host.load();
        let endpoint = ReqRepServer::new(rec.endpoint_name());
        registry
            .register(rec.endpoint_name(), endpoint.handle(), BTreeMap::new())
            .unwrap();
        let service = InferenceService::new("live", host, Arc::clone(&clock), 4);
        let stop = Arc::clone(&rec.stop);
        let server_thread = thread::spawn(move || service.serve(&endpoint, &stop));

        for s in [
            ServiceState::Scheduling,
            ServiceState::Launching,
            ServiceState::Initializing,
            ServiceState::Publishing,
            ServiceState::Ready,
        ] {
            rec.state.transition(s).unwrap();
        }

        assert!(sm.probe("live").unwrap());
        sm.stop("live").unwrap();
        assert_eq!(rec.state.current(), ServiceState::Stopping);
        server_thread.join().unwrap();
        assert!(sm.registry().lookup(&rec.endpoint_name()).is_some());
    }

    #[test]
    fn probe_without_registered_endpoint_errors() {
        let (_reg, sm, clock) = manager();
        let rec = record("cold", clock);
        sm.add(rec);
        assert!(matches!(sm.probe("cold"), Err(RuntimeError::Comm(_))));
    }

    #[test]
    fn stop_all_sets_flags() {
        let (_reg, sm, clock) = manager();
        let a = record("a", Arc::clone(&clock));
        let b = record("b", clock);
        sm.add(Arc::clone(&a));
        sm.add(Arc::clone(&b));
        sm.stop_all();
        assert!(a.stop.load(std::sync::atomic::Ordering::Acquire));
        assert!(b.stop.load(std::sync::atomic::Ordering::Acquire));
    }
}
