//! The task manager: tracking ordinary compute tasks.
//!
//! RADICAL-Pilot's `TaskManager` owns the lifecycle of submitted tasks; in this
//! reproduction it is the directory of [`TaskRecord`]s the session has accepted, with
//! aggregate queries (state counts, bulk waiting) used both by the workflow layer and by
//! the experiment harness to detect workload completion.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::error::RuntimeError;
use crate::records::TaskRecord;
use crate::states::TaskState;

/// Directory of all tasks known to a session.
#[derive(Default)]
pub struct TaskManager {
    tasks: RwLock<BTreeMap<String, Arc<TaskRecord>>>,
}

impl std::fmt::Debug for TaskManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskManager")
            .field("tasks", &self.len())
            .finish()
    }
}

impl TaskManager {
    /// Create an empty task manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a task record.
    pub fn add(&self, record: Arc<TaskRecord>) {
        self.tasks.write().insert(record.id.clone(), record);
    }

    /// Look a task up by its runtime identifier.
    pub fn get(&self, id: &str) -> Option<Arc<TaskRecord>> {
        self.tasks.read().get(id).cloned()
    }

    /// All known task identifiers.
    pub fn ids(&self) -> Vec<String> {
        self.tasks.read().keys().cloned().collect()
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.tasks.read().len()
    }

    /// True if no task has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of tasks currently in each state.
    pub fn state_counts(&self) -> BTreeMap<TaskState, usize> {
        let mut counts = BTreeMap::new();
        for record in self.tasks.read().values() {
            *counts.entry(record.state.current()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of tasks in a terminal state.
    pub fn finished(&self) -> usize {
        self.tasks
            .read()
            .values()
            .filter(|r| r.state.current().is_final())
            .count()
    }

    /// Block (polling every few milliseconds of real time) until every registered task
    /// reached a terminal state or `timeout` elapses. Returns the per-state counts.
    pub fn wait_all(&self, timeout: Duration) -> Result<BTreeMap<TaskState, usize>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.finished() == self.len() {
                return Ok(self.state_counts());
            }
            if Instant::now() >= deadline {
                return Err(RuntimeError::WaitTimeout {
                    entity: "task manager".to_string(),
                    awaited: "all tasks final".to_string(),
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::TaskDescription;
    use hpcml_platform::PlatformId;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    fn record(id: &str) -> Arc<TaskRecord> {
        TaskRecord::new(
            id.to_string(),
            TaskDescription::new(id),
            PlatformId::Local,
            ClockSpec::Manual.build(),
        )
    }

    #[test]
    fn add_get_and_counts() {
        let tm = TaskManager::new();
        assert!(tm.is_empty());
        let a = record("task.0");
        let b = record("task.1");
        tm.add(Arc::clone(&a));
        tm.add(Arc::clone(&b));
        assert_eq!(tm.len(), 2);
        assert_eq!(tm.ids(), vec!["task.0".to_string(), "task.1".to_string()]);
        assert!(tm.get("task.0").is_some());
        assert!(tm.get("task.9").is_none());
        assert_eq!(tm.state_counts()[&TaskState::New], 2);
        assert_eq!(tm.finished(), 0);
    }

    #[test]
    fn wait_all_returns_when_tasks_finish() {
        let tm = Arc::new(TaskManager::new());
        let a = record("task.0");
        tm.add(Arc::clone(&a));
        let tm2 = Arc::clone(&tm);
        let waiter = thread::spawn(move || tm2.wait_all(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(10));
        a.state.transition(TaskState::Scheduling).unwrap();
        a.state.transition(TaskState::Executing).unwrap();
        a.state.transition(TaskState::Done).unwrap();
        let counts = waiter.join().unwrap().unwrap();
        assert_eq!(counts[&TaskState::Done], 1);
    }

    #[test]
    fn wait_all_times_out() {
        let tm = TaskManager::new();
        tm.add(record("task.0"));
        let err = tm.wait_all(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, RuntimeError::WaitTimeout { .. }));
    }

    #[test]
    fn wait_all_counts_failures_as_finished() {
        let tm = TaskManager::new();
        let a = record("task.0");
        tm.add(Arc::clone(&a));
        a.state.fail(TaskState::Failed, "broken");
        let counts = tm.wait_all(Duration::from_millis(100)).unwrap();
        assert_eq!(counts[&TaskState::Failed], 1);
        assert!(format!("{tm:?}").contains("tasks"));
    }
}
