//! # hpcml — scalable runtime for hybrid HPC/ML workflow applications
//!
//! This meta-crate re-exports the public API of the `hpcml` workspace, a from-scratch
//! Rust reproduction of *"Scalable Runtime Architecture for Data-driven, Hybrid HPC and
//! ML Workflow Applications"* (IPPS 2025, arXiv:2503.13343).
//!
//! The workspace is organised as a stack of substrates below the pilot runtime:
//!
//! * [`sim`] — clocks (real, scaled, manual), random distributions, statistics.
//! * [`platform`] — simulated HPC platforms (Frontier, Delta, R3), batch system,
//!   launchers with calibrated start-up overheads.
//! * [`comm`] — ZeroMQ-like messaging: REQ/REP, PUB/SUB, queues, endpoint registry and
//!   latency injection profiles.
//! * [`serving`] — model hosting/serving: NOOP backend and a simulated llama-8b backend
//!   behind an Ollama-like single-threaded host.
//! * [`runtime`] — the paper's contribution: a pilot runtime extended with
//!   service-oriented abstractions (`ServiceManager`, service tasks, readiness/liveness,
//!   control channels) next to the classic `TaskManager`/`DataManager`/`Scheduler`/
//!   `Executor` components.
//! * [`workflows`] — an EnTK-like pipeline DSL and the three LUCID use-case pipelines.
//!
//! ## Quickstart
//!
//! ```no_run
//! use hpcml::prelude::*;
//!
//! let session = Session::builder("quickstart")
//!     .platform(PlatformId::Delta)
//!     .clock(ClockSpec::scaled(1000.0))
//!     .build()
//!     .expect("session");
//!
//! let pilot = session
//!     .submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(2).runtime_secs(3600.0))
//!     .expect("pilot");
//! pilot.wait_active().expect("pilot active");
//!
//! let svc = session
//!     .submit_service(
//!         ServiceDescription::new("llm-0")
//!             .model(ModelSpec::sim_llama_8b())
//!             .gpus(1),
//!     )
//!     .expect("service");
//! svc.wait_ready().expect("service ready");
//!
//! let task = session
//!     .submit_task(
//!         TaskDescription::new("client-0")
//!             .kind(TaskKind::inference_client("llm-0", 8))
//!             .cores(1),
//!     )
//!     .expect("task");
//! task.wait_done().expect("task done");
//! session.close();
//! ```

pub use hpcml_comm as comm;
pub use hpcml_platform as platform;
pub use hpcml_runtime as runtime;
pub use hpcml_serving as serving;
pub use hpcml_sim as sim;
pub use hpcml_workflows as workflows;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use hpcml_platform::{GangPacking, PlatformId, PlatformSpec};
    pub use hpcml_runtime::prelude::*;
    pub use hpcml_serving::ModelSpec;
    pub use hpcml_sim::clock::ClockSpec;
    pub use hpcml_workflows::prelude::*;
}
